package stats

import (
	"fmt"

	"reopt/internal/rel"
	"reopt/internal/storage"
)

// Hist2D is a two-dimensional equi-width histogram over a pair of integer
// columns, used to reproduce the paper's §5.3.1 (Example 2) analysis: even
// a multidimensional histogram assumes uniformity *inside* each bucket,
// so it cannot distinguish the empty OTT join combinations from the
// non-empty ones unless the buckets degenerate to single points.
type Hist2D struct {
	Table   string
	ColA    string
	ColB    string
	NumRows int

	loA, hiA int64
	loB, hiB int64
	bucketsA int
	bucketsB int
	counts   []int // bucketsA x bucketsB, row-major
}

// BuildHist2D scans the table and builds a bucketsA x bucketsB equi-width
// histogram over integer columns colA and colB.
func BuildHist2D(t *storage.Table, colA, colB string, bucketsA, bucketsB int) (*Hist2D, error) {
	if bucketsA <= 0 || bucketsB <= 0 {
		return nil, fmt.Errorf("stats: hist2d bucket counts must be positive")
	}
	posA, err := t.Schema().IndexOf(t.Name(), colA)
	if err != nil {
		return nil, err
	}
	posB, err := t.Schema().IndexOf(t.Name(), colB)
	if err != nil {
		return nil, err
	}
	h := &Hist2D{
		Table:    t.Name(),
		ColA:     colA,
		ColB:     colB,
		NumRows:  t.NumRows(),
		bucketsA: bucketsA,
		bucketsB: bucketsB,
		counts:   make([]int, bucketsA*bucketsB),
	}
	first := true
	for _, row := range t.Rows() {
		a, b := row[posA], row[posB]
		if a.Kind() != rel.KindInt || b.Kind() != rel.KindInt {
			return nil, fmt.Errorf("stats: hist2d requires integer columns")
		}
		ai, bi := a.AsInt(), b.AsInt()
		if first {
			h.loA, h.hiA, h.loB, h.hiB = ai, ai, bi, bi
			first = false
			continue
		}
		if ai < h.loA {
			h.loA = ai
		}
		if ai > h.hiA {
			h.hiA = ai
		}
		if bi < h.loB {
			h.loB = bi
		}
		if bi > h.hiB {
			h.hiB = bi
		}
	}
	if first {
		return h, nil // empty table
	}
	for _, row := range t.Rows() {
		ba := h.bucketA(row[posA].AsInt())
		bb := h.bucketB(row[posB].AsInt())
		h.counts[ba*h.bucketsB+bb]++
	}
	return h, nil
}

func (h *Hist2D) bucketA(v int64) int { return bucketOf(v, h.loA, h.hiA, h.bucketsA) }
func (h *Hist2D) bucketB(v int64) int { return bucketOf(v, h.loB, h.hiB, h.bucketsB) }

func bucketOf(v, lo, hi int64, n int) int {
	if hi == lo {
		return 0
	}
	b := int((v - lo) * int64(n) / (hi - lo + 1))
	if b < 0 {
		b = 0
	}
	if b >= n {
		b = n - 1
	}
	return b
}

func (h *Hist2D) bucketWidthA() float64 {
	return float64(h.hiA-h.loA+1) / float64(h.bucketsA)
}

func (h *Hist2D) bucketWidthB() float64 {
	return float64(h.hiB-h.loB+1) / float64(h.bucketsB)
}

// SelEqualsA estimates Pr(A = a) under in-bucket uniformity.
func (h *Hist2D) SelEqualsA(a int64) float64 {
	if h.NumRows == 0 {
		return 0
	}
	ba := h.bucketA(a)
	total := 0
	for bb := 0; bb < h.bucketsB; bb++ {
		total += h.counts[ba*h.bucketsB+bb]
	}
	return float64(total) / float64(h.NumRows) / h.bucketWidthA()
}

// CondBDist returns the estimated distribution of B conditioned on A = a,
// as per-bucket probabilities under in-bucket uniformity. This is what a
// 2-D-histogram-equipped optimizer would use to estimate the join
// selectivity of B against another relation after the selection A = a.
func (h *Hist2D) CondBDist(a int64) []float64 {
	ba := h.bucketA(a)
	rowTotal := 0
	for bb := 0; bb < h.bucketsB; bb++ {
		rowTotal += h.counts[ba*h.bucketsB+bb]
	}
	out := make([]float64, h.bucketsB)
	if rowTotal == 0 {
		return out
	}
	for bb := 0; bb < h.bucketsB; bb++ {
		out[bb] = float64(h.counts[ba*h.bucketsB+bb]) / float64(rowTotal)
	}
	return out
}

// EstimateOTTJoinSel estimates the selectivity of the OTT two-table query
//
//	σ(A1=a1 ∧ A2=a2 ∧ B1=B2)(R1 × R2)
//
// using two 2-D histograms, assuming in-bucket uniformity. Per Example 2
// of the paper, this estimate is identical for a1 = a2 (non-empty result)
// and a1 ≠ a2 within the same bucket pair (empty result), demonstrating
// that the histogram cannot expose the correlation.
func EstimateOTTJoinSel(h1, h2 *Hist2D, a1, a2 int64) float64 {
	// Pr(A1=a1, B1 in bucket) x Pr(A2=a2, B2 in bucket) x Pr(B1=B2 | buckets).
	selA1 := h1.SelEqualsA(a1)
	selA2 := h2.SelEqualsA(a2)
	dist1 := h1.CondBDist(a1)
	dist2 := h2.CondBDist(a2)
	wB := h1.bucketWidthB()
	if h2.bucketWidthB() > wB {
		wB = h2.bucketWidthB()
	}
	match := 0.0
	n := len(dist1)
	if len(dist2) < n {
		n = len(dist2)
	}
	for b := 0; b < n; b++ {
		// Two values uniform in the same width-w bucket are equal with
		// probability 1/w.
		if wB > 0 {
			match += dist1[b] * dist2[b] / wB
		}
	}
	return selA1 * selA2 * match
}

package stats

import (
	"math/rand"
	"testing"

	"reopt/internal/rel"
	"reopt/internal/storage"
)

func ottTable(name string, domain, perValue int, seed int64) *storage.Table {
	t := storage.NewTable(name, rel.NewSchema(
		rel.Column{Name: "a", Kind: rel.KindInt},
		rel.Column{Name: "b", Kind: rel.KindInt},
	))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < domain*perValue; i++ {
		v := int64(rng.Intn(domain))
		t.MustAppend(rel.Row{rel.Int(v), rel.Int(v)}) // B = A
	}
	return t
}

func TestBuildHist2D(t *testing.T) {
	tab := ottTable("r1", 100, 10, 1)
	h, err := BuildHist2D(tab, "a", "b", 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumRows != 1000 {
		t.Fatalf("rows: %d", h.NumRows)
	}
	// Pr(A = a) should be ~1/100 for any in-domain a.
	s := h.SelEqualsA(10)
	if s < 0.002 || s > 0.05 {
		t.Errorf("SelEqualsA: %v", s)
	}
}

// TestExample2EstimatesIdentical is the paper's §5.3.1 claim: the 2-D
// histogram gives the same selectivity estimate for the empty query
// (a1=0, a2=1) and the non-empty one (a1=0, a2=0), because 0 and 1 fall
// in the same 2-wide bucket and in-bucket uniformity hides B = A.
func TestExample2EstimatesIdentical(t *testing.T) {
	h1, err := BuildHist2D(ottTable("r1", 100, 10, 1), "a", "b", 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := BuildHist2D(ottTable("r2", 100, 10, 2), "a", "b", 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	sEmpty := EstimateOTTJoinSel(h1, h2, 0, 1)
	sNonEmpty := EstimateOTTJoinSel(h1, h2, 0, 0)
	if sEmpty != sNonEmpty {
		t.Errorf("estimates differ: empty %v vs non-empty %v", sEmpty, sNonEmpty)
	}
	if sEmpty == 0 {
		t.Error("estimates should be positive")
	}
}

func TestHist2DErrors(t *testing.T) {
	tab := ottTable("r1", 10, 2, 1)
	if _, err := BuildHist2D(tab, "a", "b", 0, 5); err == nil {
		t.Error("zero buckets should error")
	}
	if _, err := BuildHist2D(tab, "zzz", "b", 5, 5); err == nil {
		t.Error("unknown column should error")
	}
	str := storage.NewTable("s", rel.NewSchema(
		rel.Column{Name: "a", Kind: rel.KindString},
		rel.Column{Name: "b", Kind: rel.KindString},
	))
	str.MustAppend(rel.Row{rel.String_("x"), rel.String_("y")})
	if _, err := BuildHist2D(str, "a", "b", 5, 5); err == nil {
		t.Error("string columns should error")
	}
}

func TestHist2DEmptyTable(t *testing.T) {
	tab := storage.NewTable("e", rel.NewSchema(
		rel.Column{Name: "a", Kind: rel.KindInt},
		rel.Column{Name: "b", Kind: rel.KindInt},
	))
	h, err := BuildHist2D(tab, "a", "b", 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.SelEqualsA(0) != 0 {
		t.Error("empty table should estimate 0")
	}
}

func TestCondBDistSumsToOne(t *testing.T) {
	tab := ottTable("r1", 100, 10, 3)
	h, err := BuildHist2D(tab, "a", "b", 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	dist := h.CondBDist(42)
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("conditional distribution sums to %v", sum)
	}
}

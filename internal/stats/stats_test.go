package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"reopt/internal/rel"
	"reopt/internal/storage"
)

func tableOf(vals []int64) *storage.Table {
	t := storage.NewTable("t", rel.NewSchema(rel.Column{Name: "x", Kind: rel.KindInt}))
	for _, v := range vals {
		t.MustAppend(rel.Row{rel.Int(v)})
	}
	return t
}

func TestAnalyzeBasics(t *testing.T) {
	// 50x value 1, 30x value 2, 20 singletons.
	var vals []int64
	for i := 0; i < 50; i++ {
		vals = append(vals, 1)
	}
	for i := 0; i < 30; i++ {
		vals = append(vals, 2)
	}
	for i := int64(0); i < 20; i++ {
		vals = append(vals, 100+i)
	}
	cs := AnalyzeColumn(tableOf(vals), 0, AnalyzeOptions{})
	if cs.NumRows != 100 {
		t.Fatalf("rows: %d", cs.NumRows)
	}
	if cs.NumDistinct != 22 {
		t.Fatalf("ndistinct: %d", cs.NumDistinct)
	}
	if len(cs.MCV) != 2 {
		t.Fatalf("MCVs: %d (singletons must not be MCVs)", len(cs.MCV))
	}
	if cs.MCV[0].Value.AsInt() != 1 || math.Abs(cs.MCV[0].Freq-0.5) > 1e-12 {
		t.Errorf("top MCV: %+v", cs.MCV[0])
	}
	if math.Abs(cs.MCVFreqSum()-0.8) > 1e-12 {
		t.Errorf("MCV freq sum: %v", cs.MCVFreqSum())
	}
	if cs.Hist == nil || cs.Hist.NumBuckets() == 0 {
		t.Error("histogram missing for non-MCV values")
	}
}

func TestAnalyzeNulls(t *testing.T) {
	tab := storage.NewTable("t", rel.NewSchema(rel.Column{Name: "x", Kind: rel.KindInt}))
	for i := 0; i < 10; i++ {
		tab.MustAppend(rel.Row{rel.Null})
	}
	for i := 0; i < 30; i++ {
		tab.MustAppend(rel.Row{rel.Int(7)})
	}
	cs := AnalyzeColumn(tab, 0, AnalyzeOptions{})
	if math.Abs(cs.NullFrac-0.25) > 1e-12 {
		t.Errorf("null frac: %v", cs.NullFrac)
	}
	if cs.NumDistinct != 1 {
		t.Errorf("ndistinct: %d", cs.NumDistinct)
	}
	if s := cs.SelEquals(rel.Null); s != 0 {
		t.Errorf("= NULL selectivity: %v", s)
	}
}

func TestSelEqualsMCVHitAndMiss(t *testing.T) {
	// 60x value 5, plus values 0..39 once each... use count>=2 for MCV:
	// make 0..19 appear twice.
	var vals []int64
	for i := 0; i < 60; i++ {
		vals = append(vals, 5)
	}
	for i := int64(0); i < 20; i++ {
		vals = append(vals, 100+i, 100+i)
	}
	cs := AnalyzeColumn(tableOf(vals), 0, AnalyzeOptions{})
	// MCV hit: exact frequency.
	if s := cs.SelEquals(rel.Int(5)); math.Abs(s-0.6) > 1e-12 {
		t.Errorf("MCV hit sel: %v", s)
	}
	// With every distinct value an MCV, a miss estimates one row.
	if s := cs.SelEquals(rel.Int(999)); s != 1.0/100 {
		t.Errorf("miss sel: %v", s)
	}
}

func TestSelEqualsUniformMiss(t *testing.T) {
	// Uniform 1000 distinct values x2, MCV target caps at 100; misses
	// spread the residual mass over the remaining distinct values.
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i, i)
	}
	cs := AnalyzeColumn(tableOf(vals), 0, AnalyzeOptions{})
	if len(cs.MCV) != 100 {
		t.Fatalf("MCVs: %d", len(cs.MCV))
	}
	s := cs.SelEquals(rel.Int(1500)) // not present, estimated as uniform share
	want := (1 - cs.MCVFreqSum()) / float64(1000-100)
	if math.Abs(s-want) > 1e-12 {
		t.Errorf("miss sel: %v want %v", s, want)
	}
}

func TestSelRangeAndLess(t *testing.T) {
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i)
	}
	cs := AnalyzeColumn(tableOf(vals), 0, AnalyzeOptions{})
	if s := cs.SelRange(rel.Int(0), rel.Int(999)); s < 0.95 || s > 1.001 {
		t.Errorf("full range sel: %v", s)
	}
	s := cs.SelRange(rel.Int(100), rel.Int(299))
	if s < 0.15 || s > 0.25 {
		t.Errorf("20%% range sel: %v", s)
	}
	if s := cs.SelLess(rel.Int(499)); s < 0.45 || s > 0.55 {
		t.Errorf("half less sel: %v", s)
	}
	if s := cs.SelGreater(rel.Int(900)); s < 0.05 || s > 0.15 {
		t.Errorf("top decile sel: %v", s)
	}
	if s := cs.SelRange(rel.Int(10), rel.Int(5)); s != 0 {
		t.Errorf("inverted range sel: %v", s)
	}
}

// Property: selectivities stay within [0,1] for arbitrary probe values.
func TestSelectivityBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var vals []int64
	for i := 0; i < 5000; i++ {
		vals = append(vals, rng.Int63n(300))
	}
	cs := AnalyzeColumn(tableOf(vals), 0, AnalyzeOptions{})
	f := func(v int64) bool {
		for _, s := range []float64{
			cs.SelEquals(rel.Int(v)),
			cs.SelNotEquals(rel.Int(v)),
			cs.SelLess(rel.Int(v)),
			cs.SelGreater(rel.Int(v)),
			cs.SelRange(rel.Int(v), rel.Int(v+100)),
		} {
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJoinSelectivitySystemR(t *testing.T) {
	// No MCVs on either side (all singletons): 1/max(nd1, nd2).
	var a, b []int64
	for i := int64(0); i < 100; i++ {
		a = append(a, i)
	}
	for i := int64(0); i < 50; i++ {
		b = append(b, i)
	}
	ca := AnalyzeColumn(tableOf(a), 0, AnalyzeOptions{})
	cb := AnalyzeColumn(tableOf(b), 0, AnalyzeOptions{})
	s := JoinSelectivity(ca, cb)
	if math.Abs(s-0.01) > 1e-12 {
		t.Errorf("join sel: %v, want 0.01", s)
	}
}

func TestJoinSelectivityMCVRefinement(t *testing.T) {
	// Skewed sides: value 1 dominates both; the MCV join should push
	// the estimate far above 1/max(nd).
	var a, b []int64
	for i := 0; i < 900; i++ {
		a = append(a, 1)
		b = append(b, 1)
	}
	for i := int64(0); i < 100; i++ {
		a = append(a, 10+i)
		b = append(b, 1000+i)
	}
	ca := AnalyzeColumn(tableOf(a), 0, AnalyzeOptions{})
	cb := AnalyzeColumn(tableOf(b), 0, AnalyzeOptions{})
	s := JoinSelectivity(ca, cb)
	// True selectivity: 900*900/(1000*1000) = 0.81.
	if s < 0.7 || s > 0.9 {
		t.Errorf("MCV join sel: %v, want ~0.81", s)
	}
	// Exact true join size check.
	trueSel := 900.0 * 900.0 / (1000.0 * 1000.0)
	if math.Abs(s-trueSel) > 0.05 {
		t.Errorf("MCV join sel %v far from true %v", s, trueSel)
	}
}

func TestJoinSelectivityNilStats(t *testing.T) {
	if s := JoinSelectivity(nil, nil); s != DefaultJoinSel {
		t.Errorf("nil stats sel: %v", s)
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	cs := AnalyzeColumn(tableOf(nil), 0, AnalyzeOptions{})
	if cs.NumRows != 0 || cs.SelEquals(rel.Int(1)) != 0 {
		t.Error("empty table stats wrong")
	}
}

func TestTableStatsColumnLookup(t *testing.T) {
	tab := storage.NewTable("t", rel.NewSchema(
		rel.Column{Name: "x", Kind: rel.KindInt},
		rel.Column{Name: "y", Kind: rel.KindInt},
	))
	tab.MustAppend(rel.Row{rel.Int(1), rel.Int(2)})
	ts := Analyze(tab, AnalyzeOptions{})
	if _, err := ts.Column("x"); err != nil {
		t.Error(err)
	}
	if _, err := ts.Column("zzz"); err == nil {
		t.Error("unknown column should error")
	}
}

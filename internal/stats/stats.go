// Package stats implements PostgreSQL-style table statistics and
// selectivity estimation: per-column n_distinct, most-common-value (MCV)
// lists with exact frequencies, and equi-depth histograms over the
// remaining values (mirroring pg_stats), plus the estimation rules the
// paper describes in §4.2.1 — MCV hits use recorded frequencies, misses
// assume uniformity over the non-MCV distinct values, equi-join
// selectivity uses the System-R 1/max(ndv) rule refined by joining the
// two MCV lists, and conjunctions combine under the attribute-value-
// independence (AVI) assumption.
//
// The package also provides 2-D equi-width histograms used to reproduce
// the paper's §5.3.1 argument that even multidimensional histograms
// cannot detect the OTT correlation.
package stats

import (
	"fmt"
	"sort"

	"reopt/internal/rel"
	"reopt/internal/storage"
)

// DefaultTarget is the statistics target: the maximum MCV list length and
// histogram bucket count, matching PostgreSQL's default_statistics_target.
const DefaultTarget = 100

// MCVEntry is one most-common value and its relative frequency.
type MCVEntry struct {
	Value rel.Value
	// Freq is the fraction of table rows equal to Value.
	Freq float64
}

// ColumnStats holds the statistics for a single column, the analog of a
// pg_stats row.
type ColumnStats struct {
	Table  string
	Column string

	// NumRows is the table row count at ANALYZE time.
	NumRows int
	// NullFrac is the fraction of NULL values.
	NullFrac float64
	// NumDistinct is the number of distinct non-null values.
	NumDistinct int
	// MCV lists the most common values, most frequent first.
	MCV []MCVEntry
	// Hist is an equi-depth histogram over the non-MCV values; nil when
	// every distinct value made it into the MCV list.
	Hist *Histogram

	mcvFreqSum float64
	mcvIndex   map[rel.ValueKey]float64
}

// MCVFreqSum returns the total frequency mass captured by the MCV list.
func (cs *ColumnStats) MCVFreqSum() float64 { return cs.mcvFreqSum }

// MCVFreq returns the recorded frequency of v and whether v is an MCV.
func (cs *ColumnStats) MCVFreq(v rel.Value) (float64, bool) {
	f, ok := cs.mcvIndex[v.Key()]
	return f, ok
}

// Histogram is an equi-depth histogram: Bounds has NumBuckets+1 entries
// and each bucket [Bounds[i], Bounds[i+1]) holds approximately the same
// number of the values it was built over.
type Histogram struct {
	Bounds []rel.Value
	// TotalFrac is the fraction of table rows the histogram covers (rows
	// that are neither NULL nor MCVs).
	TotalFrac float64
}

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int {
	if h == nil || len(h.Bounds) < 2 {
		return 0
	}
	return len(h.Bounds) - 1
}

// AnalyzeOptions tunes statistics collection.
type AnalyzeOptions struct {
	// Target caps MCV length and histogram buckets; 0 means DefaultTarget.
	Target int
	// MCVMinCount is the minimum occurrence count for a value to be
	// considered "common"; 0 means 2 (values seen once never enter the
	// MCV list, as in PostgreSQL's heuristic).
	MCVMinCount int
}

// AnalyzeColumn computes full-scan statistics for one column of a table.
// Unlike PostgreSQL, which samples, we scan the whole (in-memory) table:
// statistics are exact, which makes the remaining estimation errors
// attributable purely to the estimation model (AVI, uniformity), exactly
// the errors the paper studies.
func AnalyzeColumn(t *storage.Table, pos int, opts AnalyzeOptions) *ColumnStats {
	target := opts.Target
	if target <= 0 {
		target = DefaultTarget
	}
	minCount := opts.MCVMinCount
	if minCount <= 0 {
		minCount = 2
	}

	col := t.Schema().Columns[pos]
	cs := &ColumnStats{
		Table:   col.Table,
		Column:  col.Name,
		NumRows: t.NumRows(),
	}
	if cs.NumRows == 0 {
		cs.mcvIndex = map[rel.ValueKey]float64{}
		return cs
	}

	counts := make(map[rel.ValueKey]int)
	exemplar := make(map[rel.ValueKey]rel.Value)
	nulls := 0
	for _, row := range t.Rows() {
		v := row[pos]
		if v.IsNull() {
			nulls++
			continue
		}
		k := v.Key()
		counts[k]++
		if _, ok := exemplar[k]; !ok {
			exemplar[k] = v
		}
	}
	cs.NullFrac = float64(nulls) / float64(cs.NumRows)
	cs.NumDistinct = len(counts)

	// MCV list: the up-to-target most frequent values with count >= minCount.
	type vc struct {
		v rel.Value
		c int
	}
	all := make([]vc, 0, len(counts))
	for k, c := range counts {
		all = append(all, vc{v: exemplar[k], c: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v.Compare(all[j].v) < 0
	})
	cs.mcvIndex = make(map[rel.ValueKey]float64)
	for _, e := range all {
		if len(cs.MCV) >= target || e.c < minCount {
			break
		}
		f := float64(e.c) / float64(cs.NumRows)
		cs.MCV = append(cs.MCV, MCVEntry{Value: e.v, Freq: f})
		cs.mcvIndex[e.v.Key()] = f
		cs.mcvFreqSum += f
	}

	// Equi-depth histogram over the non-MCV values.
	rest := make([]rel.Value, 0, cs.NumRows)
	for _, row := range t.Rows() {
		v := row[pos]
		if v.IsNull() {
			continue
		}
		if _, ok := cs.mcvIndex[v.Key()]; ok {
			continue
		}
		rest = append(rest, v)
	}
	if len(rest) > 0 {
		cs.Hist = buildHistogram(rest, target)
		cs.Hist.TotalFrac = float64(len(rest)) / float64(cs.NumRows)
	}
	return cs
}

func buildHistogram(vals []rel.Value, buckets int) *Histogram {
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	if buckets > len(vals) {
		buckets = len(vals)
	}
	if buckets < 1 {
		buckets = 1
	}
	bounds := make([]rel.Value, 0, buckets+1)
	for b := 0; b <= buckets; b++ {
		i := b * (len(vals) - 1) / buckets
		bounds = append(bounds, vals[i])
	}
	return &Histogram{Bounds: bounds}
}

// TableStats aggregates column statistics for one table.
type TableStats struct {
	Table   string
	NumRows int
	NumPage int
	Columns map[string]*ColumnStats
}

// Analyze computes statistics for every column of the table (the ANALYZE
// command).
func Analyze(t *storage.Table, opts AnalyzeOptions) *TableStats {
	ts := &TableStats{
		Table:   t.Name(),
		NumRows: t.NumRows(),
		NumPage: t.NumPages(),
		Columns: make(map[string]*ColumnStats, t.Schema().Len()),
	}
	for pos, col := range t.Schema().Columns {
		ts.Columns[col.Name] = AnalyzeColumn(t, pos, opts)
	}
	return ts
}

// Column returns the stats for the named column or an error.
func (ts *TableStats) Column(name string) (*ColumnStats, error) {
	cs, ok := ts.Columns[name]
	if !ok {
		return nil, fmt.Errorf("stats: no statistics for %s.%s", ts.Table, name)
	}
	return cs, nil
}

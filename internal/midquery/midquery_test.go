package midquery

import (
	"testing"

	"reopt/internal/core"
	"reopt/internal/executor"
	"reopt/internal/optimizer"
	"reopt/internal/workload/ott"
	"reopt/internal/workload/tpch"
)

func TestRuntimeReoptOnOTT(t *testing.T) {
	cat, err := ott.Generate(ott.Config{Seed: 5, RowsPerValue: 25})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := ott.Queries(cat, ott.QueryConfig{NumTables: 5, SameConstant: 4, Count: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat, optimizer.DefaultConfig())
	mq := New(opt, cat)
	for i, q := range qs {
		// Ground truth from plain execution.
		p, err := opt.Optimize(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := executor.Run(p, cat, executor.Options{CountOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mq.Run(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Count != truth.Count {
			t.Errorf("query %d: midquery %d rows vs plain %d", i, res.Count, truth.Count)
		}
		if res.Materializations != len(q.Tables)-1 {
			t.Errorf("query %d: %d materializations, want %d",
				i, res.Materializations, len(q.Tables)-1)
		}
		if res.Gamma.Len() == 0 {
			t.Errorf("query %d: no true cardinalities observed", i)
		}
	}
}

func TestRuntimeReoptOnTPCH(t *testing.T) {
	cat, err := tpch.Generate(tpch.Config{Customers: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat, optimizer.DefaultConfig())
	mq := New(opt, cat)
	for _, id := range []int{3, 5, 10, 12} {
		qs, err := tpch.Instances(cat, id, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		q := qs[0]
		p, err := opt.Optimize(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := executor.Run(p, cat, executor.Options{CountOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mq.Run(q)
		if err != nil {
			t.Fatalf("Q%d: %v", id, err)
		}
		if res.Count != truth.Count {
			t.Errorf("Q%d: midquery %d rows vs plain %d", id, res.Count, truth.Count)
		}
	}
}

func TestSingleTableQuery(t *testing.T) {
	cat, err := ott.Generate(ott.Config{Seed: 5, RowsPerValue: 10, NumTables: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat, optimizer.DefaultConfig())
	mq := New(opt, cat)
	qs, err := ott.Queries(cat, ott.QueryConfig{NumTables: 2, SameConstant: 2, Count: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mq.Run(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Materializations != 1 {
		t.Errorf("2-table query should materialize once, got %d", res.Materializations)
	}
}

// TestMidQueryStopsEarlyOnEmptyIntermediate verifies the key advantage
// runtime re-optimization shares with the sampling approach: once an
// intermediate result is empty, the remaining joins are free.
func TestMidQueryStopsEarlyOnEmptyIntermediate(t *testing.T) {
	cat, err := ott.Generate(ott.Config{Seed: 7, RowsPerValue: 25})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := ott.Queries(cat, ott.QueryConfig{NumTables: 5, SameConstant: 4, Count: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat, optimizer.DefaultConfig())
	mq := New(opt, cat)
	for i, q := range qs {
		res, err := mq.Run(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Count != 0 {
			t.Errorf("query %d: expected empty result", i)
		}
		// Once truth reveals an empty join, later materializations are
		// all empty: total materialized rows is bounded by the largest
		// single intermediate, not their product.
		if res.MaterializedRows > 100000 {
			t.Errorf("query %d: materialized %d rows; runtime re-opt failed to cut off",
				i, res.MaterializedRows)
		}
	}
}

// TestCompileTimeVsRuntimeComparison runs both re-optimizers on the same
// queries and checks they agree on results; the comparison of their
// overheads is the paper's §6 discussion made concrete.
func TestCompileTimeVsRuntimeComparison(t *testing.T) {
	cat, err := ott.Generate(ott.Config{Seed: 8, RowsPerValue: 25})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := ott.Queries(cat, ott.QueryConfig{NumTables: 5, SameConstant: 4, Count: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat, optimizer.DefaultConfig())
	compile := core.New(opt, cat)
	runtime := New(opt, cat)
	for i, q := range qs {
		cres, err := compile.Reoptimize(q)
		if err != nil {
			t.Fatal(err)
		}
		crun, err := executor.Run(cres.Final, cat, executor.Options{CountOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		rres, err := runtime.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if crun.Count != rres.Count {
			t.Errorf("query %d: compile-time %d vs runtime %d rows", i, crun.Count, rres.Count)
		}
	}
}

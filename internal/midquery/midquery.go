// Package midquery implements the runtime (mid-query) re-optimization
// baseline the paper compares against conceptually in §1 and §6 (Kabra
// and DeWitt [25]; progressive optimization, Markl et al. [30]). The
// executor materializes each join result at a pipeline boundary,
// observes the TRUE cardinality, feeds it into Γ, and re-plans the
// remaining work. This is the "runtime re-optimization can observe
// accurate cardinalities but pays materialization costs" trade-off the
// paper describes — implemented here so the two approaches can be
// compared on the same engine (see the paper's Appendix G note that
// such a comparison requires an engine supporting both).
//
// Simplifications relative to a production POP implementation: every
// join is a materialization point (the paper notes runtime re-optimizers
// switch plans only at pipeline boundaries; materializing each join is
// the finest such granularity), and re-planning reuses the same
// optimizer with validated-cardinality injection rather than plan
// "check-points".
package midquery

import (
	"context"
	"fmt"
	"time"

	"reopt/internal/catalog"
	"reopt/internal/executor"
	"reopt/internal/optimizer"
	"reopt/internal/plan"
	"reopt/internal/rel"
	"reopt/internal/sql"
	"reopt/internal/storage"
)

// Result reports one runtime-re-optimized execution.
type Result struct {
	// Count is the number of output rows.
	Count int64
	// Duration is the total wall-clock time, including materialization
	// and re-planning.
	Duration time.Duration
	// Replans is how many times the remaining plan changed after a
	// materialization.
	Replans int
	// Materializations is the number of intermediate results written.
	Materializations int
	// MaterializedRows is the total number of rows materialized — the
	// runtime overhead the paper contrasts with compile-time sampling.
	MaterializedRows int64
	// Gamma holds the true cardinalities observed during execution.
	Gamma *optimizer.Gamma
}

// Executor runs queries with mid-query re-optimization.
type Executor struct {
	Opt *optimizer.Optimizer
	Cat *catalog.Catalog
}

// New returns a runtime re-optimizing executor.
func New(opt *optimizer.Optimizer, cat *catalog.Catalog) *Executor {
	return &Executor{Opt: opt, Cat: cat}
}

// Run executes q with re-optimization after every join materialization:
// plan under current Γ, execute only the plan's *first* join (deepest
// leftmost), record its true cardinality in Γ, replace the pair with a
// materialized temporary relation, and repeat until one relation
// remains.
func (e *Executor) Run(q *sql.Query) (*Result, error) {
	return e.RunCtx(context.Background(), q)
}

// RunCtx is Run with cancellation: ctx is checked before each replan
// step and threaded into every materializing execution, so a cancelled
// context aborts mid-materialization with ctx.Err(). Temporaries
// registered before the abort stay in the run's private workspace
// catalog, which is discarded with the run.
func (e *Executor) RunCtx(ctx context.Context, q *sql.Query) (*Result, error) {
	if len(q.GroupBy) > 0 || len(q.OrderBy) > 0 || q.Limit > 0 {
		return nil, fmt.Errorf("midquery: GROUP BY / ORDER BY / LIMIT queries are not supported by the runtime re-optimizer: %w", executor.ErrUnsupportedPlan)
	}
	start := time.Now()
	res := &Result{Gamma: optimizer.NewGamma()}

	// Working state: a shadow catalog where executed sub-results become
	// base tables, plus a rewritten query over the remaining relations.
	// The optimizer is re-bound to the shadow catalog so temporaries
	// resolve.
	work := newWorkspace(e.Cat, q)
	opt := optimizer.New(work.cat, e.Opt.Config())

	for len(work.q.Tables) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := opt.Optimize(work.q, work.gamma())
		if err != nil {
			return nil, fmt.Errorf("midquery: replan: %w", err)
		}
		if work.lastFingerprint != "" && p.Fingerprint() != work.lastFingerprint {
			res.Replans++
		}
		join := deepestJoin(p.Root)
		if join == nil {
			return nil, fmt.Errorf("midquery: plan has no join for %d relations", len(work.q.Tables))
		}
		mat, rows, err := work.materialize(ctx, join)
		if err != nil {
			return nil, err
		}
		res.Materializations++
		res.MaterializedRows += rows

		// Record the observed TRUE cardinality for the merged set and
		// plan the rest with it.
		work.merge(join, mat, rows)
		res.Gamma.Set(optimizer.GammaKeyFor(work.baseAliasesOf(mat.Name())), float64(rows))

		// Remember what the remainder of the plan looked like so replans
		// can be counted.
		work.lastFingerprint = remainderFingerprint(p, join)
	}

	// Execute the final single-relation plan (applies any remaining
	// filters; for already-joined relations the filters were applied on
	// the way in).
	p, err := opt.Optimize(work.q, work.gamma())
	if err != nil {
		return nil, err
	}
	run, err := executor.RunCtx(ctx, p, work.cat, executor.Options{CountOnly: true})
	if err != nil {
		return nil, err
	}
	res.Count = run.Count
	res.Duration = time.Since(start)
	return res, nil
}

// workspace tracks the progressively merged query.
type workspace struct {
	cat *catalog.Catalog
	q   *sql.Query
	// baseAliases maps each (possibly temporary) alias to the original
	// base aliases it covers, for Γ keying.
	baseAliases map[string][]string
	// trueCards stores observed cardinalities keyed like Γ.
	trueCards       map[string]float64
	tmpCounter      int
	lastFingerprint string
}

func newWorkspace(cat *catalog.Catalog, q *sql.Query) *workspace {
	w := &workspace{
		cat:         cloneCatalog(cat),
		baseAliases: make(map[string][]string),
		trueCards:   make(map[string]float64),
	}
	// Copy the query; the loop mutates it.
	cq := *q
	cq.Tables = append([]sql.TableRef(nil), q.Tables...)
	cq.Selections = append([]sql.Selection(nil), q.Selections...)
	cq.Joins = append([]sql.JoinPred(nil), q.Joins...)
	cq.Projection = nil
	cq.CountStar = true
	w.q = &cq
	for _, tr := range q.Tables {
		w.baseAliases[tr.Alias] = []string{tr.Alias}
	}
	return w
}

// cloneCatalog makes a shallow catalog copy sharing base tables but
// allowing temporary registrations.
func cloneCatalog(cat *catalog.Catalog) *catalog.Catalog {
	c := catalog.New()
	for _, name := range cat.TableNames() {
		t, err := cat.Table(name)
		if err == nil {
			c.MustAddTable(t)
		}
	}
	// Statistics transfer by re-analysis on demand; the optimizer falls
	// back to defaults for temporaries, but Γ covers them with truth.
	for _, name := range cat.TableNames() {
		if ts := cat.Stats(name); ts != nil {
			c.CopyStats(name, ts)
		}
	}
	return c
}

// gamma exposes the observed true cardinalities as Γ.
func (w *workspace) gamma() *optimizer.Gamma {
	g := optimizer.NewGamma()
	for k, v := range w.trueCards {
		g.Set(k, v)
	}
	return g
}

// baseAliasesOf returns the base aliases covered by an alias.
func (w *workspace) baseAliasesOf(alias string) []string {
	return w.baseAliases[alias]
}

// deepestJoin returns the first join all of whose inputs are base scans.
func deepestJoin(n plan.Node) *plan.JoinNode {
	j, ok := n.(*plan.JoinNode)
	if !ok {
		return nil
	}
	if l := deepestJoin(j.Left); l != nil {
		return l
	}
	if r := deepestJoin(j.Right); r != nil {
		return r
	}
	return j // both children are scans
}

// materialize executes one join subtree and stores the result as a
// temporary table named _tmpN.
func (w *workspace) materialize(ctx context.Context, j *plan.JoinNode) (*storage.Table, int64, error) {
	sub := &plan.Plan{Root: j, Query: &sql.Query{}}
	run, err := executor.RunCtx(ctx, sub, w.cat, executor.Options{})
	if err != nil {
		return nil, 0, fmt.Errorf("midquery: materialize: %w", err)
	}
	w.tmpCounter++
	name := fmt.Sprintf("_tmp%d", w.tmpCounter)
	// The temporary's columns are mangled as alias__column so that
	// every column stays unique and later join predicates can re-point
	// at the temporary deterministically.
	cols := make([]rel.Column, len(j.OutSchema.Columns))
	for i, c := range j.OutSchema.Columns {
		cols[i] = rel.Column{Name: mangle(c.Table, c.Name), Kind: c.Kind}
	}
	tmp := storage.NewTable(name, rel.NewSchema(cols...))
	for _, row := range run.Rows {
		tmp.MustAppend(row)
	}
	if err := w.cat.AddTable(tmp); err != nil {
		return nil, 0, err
	}
	return tmp, run.Count, nil
}

// merge rewrites the query: the two joined aliases become one temporary
// relation; selections consumed by the materialized subtree are dropped;
// joins inside it are dropped; joins touching it re-point at the
// temporary alias.
func (w *workspace) merge(j *plan.JoinNode, tmp *storage.Table, rows int64) {
	merged := map[string]bool{}
	var mergedBase []string
	for _, a := range j.Aliases() {
		merged[a] = true
		mergedBase = append(mergedBase, w.baseAliases[a]...)
	}
	alias := tmp.Name()
	w.baseAliases[alias] = mergedBase
	w.trueCards[optimizer.GammaKeyFor(mergedBase)] = float64(rows)

	var tables []sql.TableRef
	for _, tr := range w.q.Tables {
		if !merged[tr.Alias] {
			tables = append(tables, tr)
		}
	}
	tables = append(tables, sql.TableRef{Name: alias, Alias: alias})
	w.q.Tables = tables

	var sels []sql.Selection
	for _, s := range w.q.Selections {
		if !merged[s.Col.Table] {
			sels = append(sels, s)
		}
	}
	w.q.Selections = sels

	var joins []sql.JoinPred
	for _, jp := range w.q.Joins {
		l, r := merged[jp.Left.Table], merged[jp.Right.Table]
		if l && r {
			continue // consumed by the materialized subtree
		}
		// Predicates touching the merged set re-point at the temporary
		// through the mangled column name.
		if l {
			jp.Left = sql.ColRef{Table: alias, Column: mangle(jp.Left.Table, jp.Left.Column)}
		}
		if r {
			jp.Right = sql.ColRef{Table: alias, Column: mangle(jp.Right.Table, jp.Right.Column)}
		}
		joins = append(joins, jp.Canonical())
	}
	w.q.Joins = joins
}

// mangle forms the temporary-relation column name for alias.column.
func mangle(alias, column string) string { return alias + "__" + column }

// remainderFingerprint identifies the plan minus the executed subtree,
// for replan counting.
func remainderFingerprint(p *plan.Plan, executed *plan.JoinNode) string {
	return "rest-of:" + p.Fingerprint() + "-minus:" + executed.Fingerprint()
}

package rel

import (
	"testing"
	"testing/quick"
)

// Hashing must agree with predicate equality: Equal values hash alike,
// so hash buckets only ever need an Equal check to reject collisions.
// The guarantee covers the float64-exact integer domain (|i| < 2^53);
// beyond it Equal itself is lossy (it compares through float64), and the
// seed's string-keyed hash join disagreed with Equal there in the same
// direction, so key behaviour is unchanged.
func TestHashAgreesWithEqual(t *testing.T) {
	f := func(raw int64) bool {
		i := raw % (1 << 53)
		a, b := Int(i), Float(float64(i))
		if !a.Equal(b) {
			return false // exact-domain int/float must be Equal
		}
		return a.Hash64(HashSeed) == b.Hash64(HashSeed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSeparatesKindsAndValues(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-1), Float(0.5), Float(-0.5),
		String_(""), String_("0"), String_("a"), Null,
	}
	for i, a := range vals {
		for j, b := range vals {
			ha, hb := a.Hash64(HashSeed), b.Hash64(HashSeed)
			if i == j && ha != hb {
				t.Errorf("%v: hash not deterministic", a)
			}
			if i != j && ha == hb {
				t.Errorf("%v and %v collide structurally", a, b)
			}
		}
	}
}

// Multi-column hashing is order- and boundary-sensitive: ("ab","") and
// ("a","b") must not produce the same key hash.
func TestHashRowBoundaries(t *testing.T) {
	a := Row{String_("ab"), String_("")}
	b := Row{String_("a"), String_("b")}
	if HashRow(a, []int{0, 1}) == HashRow(b, []int{0, 1}) {
		t.Error("column boundaries not separated in row hash")
	}
	c := Row{Int(1), Int(2)}
	d := Row{Int(2), Int(1)}
	if HashRow(c, []int{0, 1}) == HashRow(d, []int{0, 1}) {
		t.Error("column order not reflected in row hash")
	}
}

func TestTypedHashHelpersMatchValueHash(t *testing.T) {
	if HashInt64(HashSeed, 42) != Int(42).Hash64(HashSeed) {
		t.Error("HashInt64 disagrees with Value.Hash64")
	}
	if HashFloat64(HashSeed, 2.5) != Float(2.5).Hash64(HashSeed) {
		t.Error("HashFloat64 disagrees with Value.Hash64")
	}
	if HashFloat64(HashSeed, 7) != Int(7).Hash64(HashSeed) {
		t.Error("integral float must hash as its integer")
	}
	if HashString(HashSeed, "xyz") != String_("xyz").Hash64(HashSeed) {
		t.Error("HashString disagrees with Value.Hash64")
	}
}

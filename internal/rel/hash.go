package rel

import "math"

// 64-bit FNV-1a hashing of values, used for hash-join buckets and
// group-by tables. Hashing agrees with Equal: values for which Equal
// returns true produce the same hash (in particular an integer and a
// float holding the same number), so a hash table bucketed by Hash64
// only needs an Equal check to reject collisions, never a re-hash.
//
// Caveat: the agreement holds on the float64-exact integer domain
// (|v| < 2^53) and for non-NaN floats. Beyond 2^53, Equal itself is
// lossy — it compares through float64, making equality non-transitive
// (Int(2^53) "equals" both Int(2^53+1) and Float(2^53) which are
// unequal) — so no hash can be consistent with it there; and cmpFloat
// makes Equal(Float(NaN), x) true for every numeric x, which likewise
// admits no consistent hash, so NaN hashes by its bit pattern. In both
// cases hashed operators may miss matches that Equal would accept —
// exactly as the previous String()-keyed hash join did ("NaN" and large
// numbers rendered distinctly), so join behavior is unchanged from the
// seed; only nested-loop joins, which probe with Equal directly, ever
// disagreed, and they disagreed before too.

const (
	// HashSeed is the FNV-1a offset basis; start every row hash here.
	HashSeed uint64 = 14695981039346656037
	fnvPrime uint64 = 1099511628211
)

// kind tags mixed into the hash so that, say, Int(0) and String_("")
// cannot collide structurally across columns of a multi-column key.
const (
	tagNull   byte = 0xA0
	tagNum    byte = 0xA1
	tagFloat  byte = 0xA2
	tagString byte = 0xA3
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}

// HashInt64 folds an integer payload into h with the numeric tag,
// without requiring a constructed Value.
func HashInt64(h uint64, v int64) uint64 {
	return fnvUint64(fnvByte(h, tagNum), uint64(v))
}

// HashFloat64 folds a float payload into h, agreeing with HashInt64 for
// floats that hold exact integers (cross-kind equality, cf. Equal).
func HashFloat64(h uint64, f float64) uint64 {
	if i := int64(f); float64(i) == f {
		return HashInt64(h, i)
	}
	return fnvUint64(fnvByte(h, tagFloat), math.Float64bits(f))
}

// HashString folds a string payload into h.
func HashString(h uint64, s string) uint64 {
	h = fnvByte(h, tagString)
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// Hash64 folds the value into the running FNV-1a state h.
func (v Value) Hash64(h uint64) uint64 {
	switch v.kind {
	case KindInt:
		return HashInt64(h, v.i)
	case KindFloat:
		return HashFloat64(h, v.f)
	case KindString:
		return HashString(h, v.s)
	default:
		return fnvByte(h, tagNull)
	}
}

// HashRow hashes the row's values at positions idx, in order, starting
// from HashSeed — the multi-column join/group key hash.
func HashRow(row Row, idx []int) uint64 {
	h := HashSeed
	for _, i := range idx {
		h = row[i].Hash64(h)
	}
	return h
}

package rel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float: %v", v)
	}
	if v := String_("x"); v.Kind() != KindString || v.AsString() != "x" {
		t.Errorf("String: %v", v)
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("Null is wrong")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be NULL")
	}
}

func TestAsIntPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	String_("x").AsInt()
}

func TestAsFloatWidensInt(t *testing.T) {
	if Int(3).AsFloat() != 3.0 {
		t.Error("AsFloat should widen integers")
	}
}

func TestEqualSemantics(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1.0), true}, // cross-kind numeric equality
		{Float(1.5), Float(1.5), true},
		{String_("a"), String_("a"), true},
		{String_("a"), String_("b"), false},
		{Null, Null, false}, // NULL = NULL is false
		{Null, Int(0), false},
		{Int(0), Null, false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v = %v: got %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{String_("a"), String_("b"), -1},
		{Null, Int(math.MinInt64), -1}, // NULL sorts first
		{Int(math.MinInt64), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and Equal agrees with Compare==0
// for non-null values.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		return va.Equal(vb) == (va.Compare(vb) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key agrees with Equal — equal values share keys, and for
// int-valued floats the key collapses to the int key. Bounded to the
// float64-exact integer range (|a| < 2^53), where cross-kind numeric
// equality is well defined.
func TestKeyConsistentWithEqual(t *testing.T) {
	f := func(raw int64) bool {
		a := raw % (1 << 53)
		sameKey := Int(a).Key() == Float(float64(a)).Key()
		return sameKey == Int(a).Equal(Float(float64(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if Int(1).Key() == Int(2).Key() {
		t.Error("distinct ints share a key")
	}
	if String_("1").Key() == Int(1).Key() {
		t.Error("string and int should not share keys")
	}
	if !Null.Key().IsNull() {
		t.Error("null key should report IsNull")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null,
		"42":   Int(42),
		"2.5":  Float(2.5),
		`"hi"`: String_("hi"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "BIGINT" || KindNull.String() != "NULL" {
		t.Error("kind names wrong")
	}
}

func TestFloatIntKeyBoundary(t *testing.T) {
	// A non-integral float must not collide with any int key.
	if Float(1.5).Key() == Int(1).Key() || Float(1.5).Key() == Int(2).Key() {
		t.Error("fractional float collides with int key")
	}
}

package rel

import (
	"fmt"
	"strings"
)

// Row is a tuple of values. Rows are positional; column names live in the
// Schema that accompanies the row stream.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row holding r followed by o, as produced by joins.
func (r Row) Concat(o Row) Row {
	out := make(Row, 0, len(r)+len(o))
	out = append(out, r...)
	out = append(out, o...)
	return out
}

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Column describes one attribute of a table or intermediate result.
type Column struct {
	// Table is the (possibly aliased) relation the column belongs to.
	// Intermediate results keep the base-table attribution so that
	// predicates can be resolved against join outputs.
	Table string
	// Name is the column name within its table.
	Name string
	// Kind is the column's declared type.
	Kind Kind
}

// QualifiedName returns "table.name".
func (c Column) QualifiedName() string { return c.Table + "." + c.Name }

// Schema is an ordered list of columns describing a row stream.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// IndexOf resolves a column reference. A table qualifier of "" matches any
// table, but the name must then be unambiguous; an error is returned for
// unknown or ambiguous references.
func (s *Schema) IndexOf(table, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if c.Name != name {
			continue
		}
		if table != "" && c.Table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("rel: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return -1, fmt.Errorf("rel: unknown column %s.%s", table, name)
		}
		return -1, fmt.Errorf("rel: unknown column %q", name)
	}
	return found, nil
}

// MustIndexOf is IndexOf for callers that have already resolved names.
func (s *Schema) MustIndexOf(table, name string) int {
	i, err := s.IndexOf(table, name)
	if err != nil {
		panic(err)
	}
	return i
}

// Concat returns the schema of a join of s and o, preserving order.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return &Schema{Columns: cols}
}

// Project returns a schema containing just the given column positions.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// String renders the schema for debugging.
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = fmt.Sprintf("%s %s", c.QualifiedName(), c.Kind)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

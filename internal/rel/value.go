// Package rel defines the relational data model shared by every layer of
// the system: typed values, rows, column and table schemas, and the
// comparison semantics used by predicates, joins, sorting, and indexing.
//
// The model is intentionally compact: three scalar types (64-bit integer,
// 64-bit float, string) cover every workload in the paper — TPC-H-style
// keys, dates (encoded as days), and decimals (encoded as hundredths) are
// all integers, while names and flags are strings.
package rel

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL marker. Null compares less than every
	// non-null value and is never equal to anything, including itself,
	// under predicate semantics (use Value.Equal for predicate equality
	// and Compare for total ordering).
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindString is an immutable byte string.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single relational scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. The trailing underscore avoids a clash
// with the fmt.Stringer method on Value.
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the runtime type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics if the value is not an
// integer; use Kind to check first when the type is not statically known.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("rel: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the float payload, widening integers.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("rel: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string payload. It panics on non-string values.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("rel: AsString on %s value", v.kind))
	}
	return v.s
}

// String renders the value for plans, traces, and error messages.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	default:
		return "?"
	}
}

// Equal reports SQL predicate equality: NULL = anything is false, and
// numeric values compare across int/float kinds.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	return v.compareNonNull(o) == 0
}

// Compare returns a total ordering over values: -1, 0, or +1. NULL sorts
// before every non-null value and equals itself, which makes Compare
// usable for sorting and ordered indexes. Values of incomparable kinds
// (string vs numeric) order by kind.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	return v.compareNonNull(o)
}

func (v Value) compareNonNull(o Value) int {
	// Numeric kinds compare by value across int/float.
	if v.kind != o.kind {
		if isNumeric(v.kind) && isNumeric(o.kind) {
			return cmpFloat(v.AsFloat(), o.AsFloat())
		}
		// Arbitrary but stable cross-kind ordering.
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	case KindFloat:
		return cmpFloat(v.f, o.f)
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Key returns a compact representation usable as a map key for hash
// joins, group-by, and distinct counting. Integers and floats that hold
// the same numeric value map to the same key so that cross-kind equality
// and hashing agree.
func (v Value) Key() ValueKey {
	switch v.kind {
	case KindNull:
		return ValueKey{kind: KindNull}
	case KindInt:
		return ValueKey{kind: KindInt, num: v.i}
	case KindFloat:
		// Floats holding exact integers share the key with ints.
		if f := v.f; f == float64(int64(f)) {
			return ValueKey{kind: KindInt, num: int64(f)}
		}
		return ValueKey{kind: KindFloat, num: int64(math.Float64bits(v.f))}
	case KindString:
		return ValueKey{kind: KindString, str: v.s}
	default:
		return ValueKey{}
	}
}

// ValueKey is a comparable projection of a Value, suitable for map keys.
type ValueKey struct {
	kind Kind
	num  int64
	str  string
}

// IsNull reports whether the key encodes SQL NULL.
func (k ValueKey) IsNull() bool { return k.kind == KindNull }

package rel

import "testing"

func testSchema() *Schema {
	return NewSchema(
		Column{Table: "t", Name: "a", Kind: KindInt},
		Column{Table: "t", Name: "b", Kind: KindString},
		Column{Table: "u", Name: "a", Kind: KindInt},
	)
}

func TestIndexOfQualified(t *testing.T) {
	s := testSchema()
	i, err := s.IndexOf("t", "a")
	if err != nil || i != 0 {
		t.Errorf("t.a: %d, %v", i, err)
	}
	i, err = s.IndexOf("u", "a")
	if err != nil || i != 2 {
		t.Errorf("u.a: %d, %v", i, err)
	}
}

func TestIndexOfUnqualified(t *testing.T) {
	s := testSchema()
	i, err := s.IndexOf("", "b")
	if err != nil || i != 1 {
		t.Errorf("b: %d, %v", i, err)
	}
	if _, err := s.IndexOf("", "a"); err == nil {
		t.Error("ambiguous reference should error")
	}
	if _, err := s.IndexOf("", "zzz"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := s.IndexOf("t", "zzz"); err == nil {
		t.Error("unknown qualified column should error")
	}
}

func TestMustIndexOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	testSchema().MustIndexOf("", "nope")
}

func TestConcatAndProject(t *testing.T) {
	s := testSchema()
	o := NewSchema(Column{Table: "v", Name: "c", Kind: KindFloat})
	c := s.Concat(o)
	if c.Len() != 4 || c.Columns[3].QualifiedName() != "v.c" {
		t.Errorf("concat: %s", c)
	}
	p := c.Project([]int{3, 0})
	if p.Len() != 2 || p.Columns[0].Name != "c" || p.Columns[1].Name != "a" {
		t.Errorf("project: %s", p)
	}
}

func TestRowCloneConcat(t *testing.T) {
	r := Row{Int(1), Int(2)}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].AsInt() != 1 {
		t.Error("clone aliases original")
	}
	j := r.Concat(Row{Int(3)})
	if len(j) != 3 || j[2].AsInt() != 3 {
		t.Errorf("concat: %v", j)
	}
	if j.String() != "(1, 2, 3)" {
		t.Errorf("row string: %s", j)
	}
}

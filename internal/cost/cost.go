// Package cost implements the optimizer's cost model: PostgreSQL's five
// cost units (seq_page_cost, random_page_cost, cpu_tuple_cost,
// cpu_index_tuple_cost, cpu_operator_cost) and per-operator cost
// formulas. The units are replaceable wholesale, which is how the paper
// runs every experiment twice — once with the defaults and once with
// units calibrated against the actual execution environment (§5.1.2).
package cost

import (
	"fmt"
	"math"
)

// Units are the five PostgreSQL cost units. Costs are relative: the
// default convention sets one sequential page read to 1.0.
type Units struct {
	// SeqPage is the cost of reading one page sequentially.
	SeqPage float64
	// RandPage is the cost of reading one page non-sequentially.
	RandPage float64
	// CPUTuple is the CPU cost of processing one tuple.
	CPUTuple float64
	// CPUIndexTuple is the CPU cost of processing one index entry.
	CPUIndexTuple float64
	// CPUOperator is the CPU cost of one operator/function evaluation.
	CPUOperator float64
}

// DefaultUnits are PostgreSQL's default cost units (postgresql.conf):
// tuned for a spinning disk, they overcharge random I/O by 4x relative
// to sequential — a poor fit for an in-memory engine, which is exactly
// the mismatch cost-unit calibration repairs.
var DefaultUnits = Units{
	SeqPage:       1.0,
	RandPage:      4.0,
	CPUTuple:      0.01,
	CPUIndexTuple: 0.005,
	CPUOperator:   0.0025,
}

// String renders the units for reports.
func (u Units) String() string {
	return fmt.Sprintf("seq_page=%.4g rand_page=%.4g cpu_tuple=%.4g cpu_index_tuple=%.4g cpu_operator=%.4g",
		u.SeqPage, u.RandPage, u.CPUTuple, u.CPUIndexTuple, u.CPUOperator)
}

// Model evaluates operator cost formulas under a set of units.
type Model struct {
	U Units
}

// NewModel returns a model over the given units.
func NewModel(u Units) *Model { return &Model{U: u} }

// SeqScan returns the cost of sequentially scanning a table of pages
// heap pages and rows tuples, evaluating filterOps operator calls per
// tuple.
func (m *Model) SeqScan(pages, rows float64, filterOps int) float64 {
	return pages*m.U.SeqPage + rows*(m.U.CPUTuple+float64(filterOps)*m.U.CPUOperator)
}

// IndexProbe returns the cost of one equality probe into an index of the
// given height that returns matchRows rows, fetching each matching heap
// row with a random page read and evaluating residualOps extra operator
// calls per fetched row.
func (m *Model) IndexProbe(height int, matchRows float64, residualOps int) float64 {
	descent := float64(height) * m.U.RandPage
	perRow := m.U.CPUIndexTuple + m.U.RandPage + m.U.CPUTuple + float64(residualOps)*m.U.CPUOperator
	return descent + matchRows*perRow
}

// NestLoop returns the cost of a nested-loop join given the input costs,
// input cardinalities, number of join predicates, and output cardinality.
// The inner input is re-executed per outer row.
func (m *Model) NestLoop(outerCost, innerCost, outerRows, innerRows float64, preds int, outRows float64) float64 {
	rescans := math.Max(outerRows, 1)
	return outerCost + rescans*innerCost +
		outerRows*innerRows*float64(preds)*m.U.CPUOperator +
		outRows*m.U.CPUTuple
}

// IndexNestLoop returns the cost of an index nested-loop join: the outer
// input once, plus one index probe per outer row.
func (m *Model) IndexNestLoop(outerCost, outerRows, probeCost, outRows float64) float64 {
	return outerCost + math.Max(outerRows, 0)*probeCost + outRows*m.U.CPUTuple
}

// HashJoin returns the cost of a hash join building on the inner input.
func (m *Model) HashJoin(outerCost, innerCost, outerRows, innerRows float64, preds int, outRows float64) float64 {
	build := innerRows * (m.U.CPUOperator + m.U.CPUTuple)
	probe := outerRows * float64(preds) * m.U.CPUOperator
	return outerCost + innerCost + build + probe + outRows*m.U.CPUTuple
}

// Sort returns the cost of sorting rows tuples (comparison-based,
// n log n operator evaluations).
func (m *Model) Sort(rows float64) float64 {
	if rows < 2 {
		return m.U.CPUOperator
	}
	return 2 * rows * math.Log2(rows) * m.U.CPUOperator
}

// MergeJoin returns the cost of a sort-merge join that sorts both inputs.
func (m *Model) MergeJoin(outerCost, innerCost, outerRows, innerRows, outRows float64) float64 {
	return outerCost + innerCost + m.Sort(outerRows) + m.Sort(innerRows) +
		(outerRows+innerRows)*m.U.CPUOperator + outRows*m.U.CPUTuple
}

package cost

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultUnitsMatchPostgres(t *testing.T) {
	u := DefaultUnits
	if u.SeqPage != 1.0 || u.RandPage != 4.0 || u.CPUTuple != 0.01 ||
		u.CPUIndexTuple != 0.005 || u.CPUOperator != 0.0025 {
		t.Errorf("defaults drifted: %s", u)
	}
}

func TestSeqScanCost(t *testing.T) {
	m := NewModel(DefaultUnits)
	c := m.SeqScan(100, 6400, 0)
	want := 100*1.0 + 6400*0.01
	if c != want {
		t.Errorf("seq scan: %v, want %v", c, want)
	}
	// Filters add operator costs.
	if m.SeqScan(100, 6400, 2) <= c {
		t.Error("filters should increase cost")
	}
}

func TestIndexProbeCost(t *testing.T) {
	m := NewModel(DefaultUnits)
	c1 := m.IndexProbe(2, 10, 0)
	c2 := m.IndexProbe(3, 10, 0)
	if c2 <= c1 {
		t.Error("taller index must cost more")
	}
	if m.IndexProbe(2, 100, 0) <= c1 {
		t.Error("more matches must cost more")
	}
}

func TestJoinCostOrdering(t *testing.T) {
	m := NewModel(DefaultUnits)
	// For large inputs, hash join should beat naive nested loop.
	nl := m.NestLoop(100, 100, 10000, 10000, 1, 1000)
	hj := m.HashJoin(100, 100, 10000, 10000, 1, 1000)
	if hj >= nl {
		t.Errorf("hash %v should beat nested loop %v on bulk joins", hj, nl)
	}
	// For one outer row with an index, INL should beat hash join.
	inl := m.IndexNestLoop(1, 1, m.IndexProbe(2, 5, 0), 5)
	hj2 := m.HashJoin(1, 100, 1, 10000, 1, 5)
	if inl >= hj2 {
		t.Errorf("index NL %v should beat hash %v for tiny outer", inl, hj2)
	}
}

func TestSortCost(t *testing.T) {
	m := NewModel(DefaultUnits)
	if m.Sort(1) <= 0 {
		t.Error("sort of 1 row should still cost something")
	}
	if m.Sort(10000) <= m.Sort(100) {
		t.Error("sort cost must grow")
	}
}

// Property: all cost formulas are non-negative and monotone in output
// cardinality.
func TestCostNonNegativeProperty(t *testing.T) {
	m := NewModel(DefaultUnits)
	f := func(rowsRaw uint16, outRaw uint16) bool {
		rows := float64(rowsRaw)
		out := float64(outRaw)
		costs := []float64{
			m.SeqScan(rows/64+1, rows, 1),
			m.IndexProbe(2, rows, 1),
			m.NestLoop(10, 10, rows, rows, 1, out),
			m.HashJoin(10, 10, rows, rows, 1, out),
			m.MergeJoin(10, 10, rows, rows, out),
			m.IndexNestLoop(10, rows, 5, out),
			m.Sort(rows),
		}
		for _, c := range costs {
			if c < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnitsString(t *testing.T) {
	s := DefaultUnits.String()
	for _, want := range []string{"seq_page=1", "rand_page=4", "cpu_tuple=0.01"} {
		if !strings.Contains(s, want) {
			t.Errorf("units string missing %q: %s", want, s)
		}
	}
}

package reopt_test

// Session-level tests for the workload validation scheduler
// (WithWorkloadScheduler): scheduled re-optimization must be an
// invisible optimization — byte-identical results at every parallelism,
// prompt per-query cancellation, coalescing observable only in the
// stats (and the clock).

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"reopt"
)

// TestSessionSchedulerWorkloadEquivalence: ReoptimizeWorkload through
// the scheduler must produce results byte-identical to the serial,
// unscheduled path — per query, at parallelism 1, 2 and NumCPU, with
// and without the shared workload cache.
func TestSessionSchedulerWorkloadEquivalence(t *testing.T) {
	cat, qs := ottSession(t)
	ctx := context.Background()

	// Serial, unscheduled baseline: one query at a time, private caches.
	baseline, err := reopt.Open(cat)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][4]string, len(qs))
	for i, q := range qs {
		res, err := baseline.Reoptimize(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultKey(res)
	}

	for _, withCache := range []bool{false, true} {
		for _, par := range []int{1, 2, runtime.NumCPU()} {
			opts := []reopt.SessionOption{reopt.WithWorkloadScheduler(0)}
			label := "sched"
			if withCache {
				opts = append(opts, reopt.WithSharedCache(0))
				label = "sched+cache"
			}
			s, err := reopt.Open(cat, opts...)
			if err != nil {
				t.Fatal(err)
			}
			results, err := s.ReoptimizeWorkload(ctx, qs, par)
			if err != nil {
				t.Fatalf("%s parallelism=%d: %v", label, par, err)
			}
			for i, res := range results {
				if res == nil {
					t.Fatalf("%s parallelism=%d: query %d unanswered", label, par, i)
				}
				if resultKey(res) != want[i] {
					t.Errorf("%s parallelism=%d: query %d diverged from the serial path", label, par, i)
				}
			}
		}
	}
}

// TestSessionSchedulerCoalesces: at parallelism >= 2 the in-flight
// queries' validations must actually share waves — the stats, not just
// the results, prove the scheduler is on the path. On a single-proc
// host two workload workers can ping-pong without EVER overlapping in
// validation (each submission sees the other mid-optimize or not yet
// scheduled), so coalescing is genuinely not guaranteed there and the
// test skips; the deterministic all-waiting guarantee is covered at
// the sampling layer (TestSchedulerCoalescesAllWaiting), and CI's race
// job runs this test at GOMAXPROCS=2. Multi-proc, the test still
// drives repeated passes rather than asserting one pass coalesces.
func TestSessionSchedulerCoalesces(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2: single-proc workers may never overlap in validation")
	}
	cat, qs := ottSession(t)
	s, err := reopt.Open(cat,
		reopt.WithWorkloadScheduler(50*time.Millisecond),
		reopt.WithSharedCache(0))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 30; pass++ {
		if _, err := s.ReoptimizeWorkload(context.Background(), qs, 2); err != nil {
			t.Fatal(err)
		}
		if s.SchedulerStats().Coalesced > 0 {
			break
		}
	}
	stats := s.SchedulerStats()
	if stats.Requests == 0 {
		t.Fatal("no validations flowed through the scheduler")
	}
	if stats.Coalesced == 0 {
		t.Errorf("no coalesced waves at parallelism 2 across 30 passes: %+v", stats)
	}
	if stats.Waves >= stats.Requests {
		t.Errorf("every request ran its own wave: %+v", stats)
	}
}

// TestSessionSchedulerStatsOffByDefault: without WithWorkloadScheduler
// the accessor reports zeros and nothing routes through a scheduler.
func TestSessionSchedulerStatsOffByDefault(t *testing.T) {
	cat, qs := ottSession(t)
	s, err := reopt.Open(cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reoptimize(context.Background(), qs[0]); err != nil {
		t.Fatal(err)
	}
	if stats := s.SchedulerStats(); stats != (reopt.SchedulerStats{}) {
		t.Errorf("scheduler stats non-zero without the option: %+v", stats)
	}
}

// TestSessionSchedulerWorkloadCancel: cancelling a scheduled workload
// returns promptly with ctx's error, and the session keeps producing
// correct results afterwards — no wave or registration is left behind
// wedging later calls.
func TestSessionSchedulerWorkloadCancel(t *testing.T) {
	cat, qs := ottSession(t)
	s, err := reopt.Open(cat,
		reopt.WithWorkloadScheduler(0), reopt.WithSharedCache(0))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var werr error
	go func() {
		defer wg.Done()
		_, werr = s.ReoptimizeWorkload(ctx, qs, 2)
	}()
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled scheduled workload did not return")
	}
	if werr == nil {
		t.Fatal("cancelled workload must not succeed")
	}
	if !errors.Is(werr, context.Canceled) && !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("cancelled workload returned %v", werr)
	}

	fresh, err := reopt.Open(cat)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		got, err := s.Reoptimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Reoptimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if resultKey(got) != resultKey(want) {
			t.Errorf("query %d: post-cancel scheduled session diverged", i)
		}
	}
}

// TestSessionSchedulerPerQueryBudget: per-query budgets (WithTimeout)
// keep their §5.4 best-so-far semantics under the scheduler — a spent
// budget yields a plan or a wrapped ErrBudgetExceeded, never a poisoned
// session.
func TestSessionSchedulerPerQueryBudget(t *testing.T) {
	cat, qs := ottSession(t)
	s, err := reopt.Open(cat,
		reopt.WithWorkloadScheduler(0), reopt.WithSharedCache(0))
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.ReoptimizeWorkload(context.Background(), qs, 2,
		reopt.WithTimeout(50*time.Millisecond))
	if err != nil && !errors.Is(err, reopt.ErrBudgetExceeded) {
		t.Fatalf("budgeted workload: %v", err)
	}
	answered := 0
	for _, res := range results {
		if res != nil {
			answered++
			if res.Final == nil {
				t.Error("budgeted query returned a result without a plan")
			}
		}
	}
	if err == nil && answered != len(qs) {
		t.Errorf("nil error but only %d/%d queries answered", answered, len(qs))
	}

	// The session must still serve full-budget traffic correctly.
	fresh, err := reopt.Open(cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Reoptimize(context.Background(), qs[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Reoptimize(context.Background(), qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(got) != resultKey(want) {
		t.Error("post-budget scheduled session diverged")
	}
}

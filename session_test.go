package reopt_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"reopt"
)

// ottSession builds the OTT database and query mix shared by the
// Session tests: 3-, 4- and 5-table instances of the torture workload.
func ottSession(t testing.TB) (*reopt.Catalog, []*reopt.Query) {
	t.Helper()
	cat, err := reopt.GenerateOTT(reopt.OTTConfig{Seed: 5, RowsPerValue: 15})
	if err != nil {
		t.Fatal(err)
	}
	var qs []*reopt.Query
	for _, shape := range []struct{ tables, same, count int }{
		{3, 2, 2}, {4, 3, 2}, {5, 4, 2},
	} {
		batch, err := reopt.OTTQueries(cat, reopt.OTTQueryConfig{
			NumTables: shape.tables, SameConstant: shape.same,
			Count: shape.count, Seed: int64(13 + shape.tables),
		})
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, batch...)
	}
	return cat, qs
}

// resultKey reduces a re-optimization result to its observable identity:
// final plan, Γ, and trace shape.
func resultKey(res *reopt.ReoptResult) [4]string {
	return [4]string{
		res.Final.Fingerprint(),
		res.Final.Explain(),
		res.Gamma.Snapshot(),
		fmt.Sprintf("%d/%d/%v", res.NumPlans, len(res.Rounds), res.Converged),
	}
}

// TestSessionReoptimizeEquivalence: Session.Reoptimize must produce
// byte-identical plans, Γ and traces to the legacy NewOptimizer +
// NewReoptimizer entry points, at every worker count and with or
// without the shared cache.
func TestSessionReoptimizeEquivalence(t *testing.T) {
	cat, qs := ottSession(t)
	ctx := context.Background()
	for _, w := range []int{1, 2, runtime.NumCPU()} {
		legacyOpt := reopt.NewOptimizer(cat, reopt.DefaultOptimizerConfig())
		legacy := reopt.NewReoptimizer(legacyOpt, cat)
		legacy.Opts.Workers = w

		plain, err := reopt.Open(cat, reopt.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		cached, err := reopt.Open(cat, reopt.WithWorkers(w), reopt.WithSharedCache(0))
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			want, err := legacy.Reoptimize(q)
			if err != nil {
				t.Fatalf("workers=%d q%d legacy: %v", w, qi, err)
			}
			got, err := plain.Reoptimize(ctx, q)
			if err != nil {
				t.Fatalf("workers=%d q%d session: %v", w, qi, err)
			}
			if resultKey(got) != resultKey(want) {
				t.Errorf("workers=%d q%d: session result diverged from legacy", w, qi)
			}
			viaCache, err := cached.Reoptimize(ctx, q)
			if err != nil {
				t.Fatalf("workers=%d q%d cached session: %v", w, qi, err)
			}
			if resultKey(viaCache) != resultKey(want) {
				t.Errorf("workers=%d q%d: shared-cache session result diverged", w, qi)
			}
		}
	}
}

// TestSessionValidateEquivalence: Session.Validate subsumes all three
// legacy estimator variants with byte-identical Δ and sample counts.
func TestSessionValidateEquivalence(t *testing.T) {
	cat, qs := ottSession(t)
	ctx := context.Background()
	for _, w := range []int{1, 2, runtime.NumCPU()} {
		s, err := reopt.Open(cat, reopt.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		var plans []*reopt.Plan
		for _, q := range qs[:4] {
			p, err := s.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, p)
		}
		got, err := s.Validate(ctx, plans...)
		if err != nil {
			t.Fatalf("workers=%d Validate: %v", w, err)
		}
		want, err := reopt.EstimateBySamplingBatch(plans, cat, w)
		if err != nil {
			t.Fatalf("workers=%d legacy batch: %v", w, err)
		}
		for i := range plans {
			if !reflect.DeepEqual(got[i].Delta, want[i].Delta) ||
				!reflect.DeepEqual(got[i].SampleRows, want[i].SampleRows) {
				t.Errorf("workers=%d plan %d: batched estimates diverged", w, i)
			}
			single, err := reopt.EstimateBySamplingWorkers(plans[i], cat, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[i].Delta, single.Delta) {
				t.Errorf("workers=%d plan %d: estimate diverged from single-plan path", w, i)
			}
		}
	}
}

// TestSessionWorkloadMatchesSequential: ReoptimizeWorkload with real
// concurrency over the shared cache must return, per query, exactly the
// result a sequential session produces.
func TestSessionWorkloadMatchesSequential(t *testing.T) {
	cat, qs := ottSession(t)
	ctx := context.Background()

	seq, err := reopt.Open(cat, reopt.WithSharedCache(0))
	if err != nil {
		t.Fatal(err)
	}
	var want []*reopt.ReoptResult
	for _, q := range qs {
		res, err := seq.Reoptimize(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	par, err := reopt.Open(cat, reopt.WithSharedCache(0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.ReoptimizeWorkload(ctx, qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("workload results: %d, want %d", len(got), len(qs))
	}
	for i := range qs {
		if resultKey(got[i]) != resultKey(want[i]) {
			t.Errorf("query %d: concurrent workload result diverged from sequential", i)
		}
	}
	if hits, misses := par.CacheStats(); hits+misses == 0 {
		t.Error("workload run never touched the shared cache")
	}
}

// TestSessionErrorTaxonomy: the exported sentinels classify the three
// standard failure modes via errors.Is.
func TestSessionErrorTaxonomy(t *testing.T) {
	ctx := context.Background()

	if _, err := reopt.Open(nil); err == nil {
		t.Error("Open(nil) must fail")
	}

	// ErrNoSamples: catalog without BuildSamples.
	bare := reopt.NewCatalog()
	tab := reopt.NewTable("t", reopt.NewSchema(
		reopt.Column{Name: "a", Kind: reopt.KindInt}))
	for i := int64(0); i < 100; i++ {
		tab.MustAppend(reopt.Row{reopt.Int(i % 7)})
	}
	bare.MustAddTable(tab)
	if err := bare.AnalyzeAll(reopt.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	s, err := reopt.Open(bare)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Parse(`SELECT COUNT(*) FROM t WHERE t.a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reoptimize(ctx, q); !errors.Is(err, reopt.ErrNoSamples) {
		t.Errorf("Reoptimize without samples: got %v, want ErrNoSamples", err)
	}
	p, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Validate(ctx, p); !errors.Is(err, reopt.ErrNoSamples) {
		t.Errorf("Validate without samples: got %v, want ErrNoSamples", err)
	}

	// ErrUnsupportedPlan: the mid-query baseline rejects grouped queries.
	cat, qs := ottSession(t)
	s2, err := reopt.Open(cat)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := s2.Parse(`SELECT COUNT(*) FROM r1 GROUP BY r1.a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.MidQuery(ctx, gq); !errors.Is(err, reopt.ErrUnsupportedPlan) {
		t.Errorf("MidQuery on GROUP BY: got %v, want ErrUnsupportedPlan", err)
	}

	// ErrBudgetExceeded: deadline spent before any plan was produced.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s2.Reoptimize(expired, qs[0]); !errors.Is(err, reopt.ErrBudgetExceeded) {
		t.Errorf("expired budget: got %v, want ErrBudgetExceeded", err)
	}
}

// TestSessionWorkloadBudgetKeepsResults: a spent deadline on the
// workload context must not discard answered queries — it returns the
// positional results with nil holes for unanswered queries and an error
// wrapping ErrBudgetExceeded. (With the deadline already expired, every
// slot is a hole; the shape of the contract is what matters.)
func TestSessionWorkloadBudgetKeepsResults(t *testing.T) {
	cat, qs := ottSession(t)
	s, err := reopt.Open(cat, reopt.WithSharedCache(0))
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	results, err := s.ReoptimizeWorkload(expired, qs, 2)
	if !errors.Is(err, reopt.ErrBudgetExceeded) {
		t.Fatalf("spent workload budget: got %v, want ErrBudgetExceeded", err)
	}
	if len(results) != len(qs) {
		t.Fatalf("results must stay positional: got %d, want %d", len(results), len(qs))
	}
	// A plain cancellation still returns no results and ctx.Err().
	cancelled, cause := context.WithCancel(context.Background())
	cause()
	if res, err := s.ReoptimizeWorkload(cancelled, qs, 2); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("cancelled workload: res=%v err=%v", res, err)
	}
}

// TestSessionReusableAfterCancel: cancellation of any method leaves the
// session fully serviceable for the next call.
func TestSessionReusableAfterCancel(t *testing.T) {
	cat, qs := ottSession(t)
	s, err := reopt.Open(cat, reopt.WithSharedCache(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dead, cancel := context.WithCancel(ctx)
	cancel()

	if _, err := s.Reoptimize(dead, qs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Reoptimize: %v", err)
	}
	p, err := s.Optimize(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Validate(dead, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Validate: %v", err)
	}
	if _, err := s.Execute(dead, p, reopt.ExecOptions{CountOnly: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Execute: %v", err)
	}
	if _, err := s.ReoptimizeWorkload(dead, qs, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled workload: %v", err)
	}

	// Fresh context: everything works, including through the same cache.
	res, err := s.Reoptimize(ctx, qs[0])
	if err != nil || !res.Converged {
		t.Fatalf("session not reusable after cancels: res=%v err=%v", res, err)
	}
	fresh, err := reopt.Open(cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Reoptimize(ctx, qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(res) != resultKey(want) {
		t.Error("post-cancel result diverged from a fresh session's")
	}
}

// TestSessionSharedCacheValueBudget: a value-bounded shared cache keeps
// estimates identical while holding retained materialized values within
// the budget.
func TestSessionSharedCacheValueBudget(t *testing.T) {
	cat, qs := ottSession(t)
	ctx := context.Background()

	unbounded, err := reopt.Open(cat, reopt.WithSharedCache(0))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := reopt.Open(cat, reopt.WithSharedCacheValues(500))
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		a, err := unbounded.Reoptimize(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tight.Reoptimize(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if resultKey(a) != resultKey(b) {
			t.Errorf("query %d: value budget changed the result", qi)
		}
	}
	cache := reopt.NewWorkloadCacheBudget(0, 500)
	shared, err := reopt.Open(cat, reopt.WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shared.Reoptimize(ctx, qs[0]); err != nil {
		t.Fatal(err)
	}
	if v := cache.Values(); v > 500 {
		t.Errorf("retained values %d exceed the 500-value budget", v)
	}
}

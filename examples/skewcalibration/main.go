// Skew + calibration: reproduce the paper's §5.2 observations on a
// skewed TPC-H-style database — re-optimization helps the long-running
// join queries, and calibrating the five cost units (§5.1.2) changes
// plan choice on its own, sometimes as much as re-optimization does.
package main

import (
	"context"
	"fmt"
	"log"

	"reopt"
)

func main() {
	fmt.Println("building skewed TPC-H database (z=1)...")
	cat, err := reopt.GenerateTPCH(reopt.TPCHConfig{Customers: 1500, Z: 1, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("calibrating cost units against this machine...")
	calibrated, err := reopt.Calibrate(reopt.CalibrateOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  defaults:   %s\n", reopt.DefaultUnits)
	fmt.Printf("  calibrated: %s\n", calibrated)

	ctx := context.Background()

	// Parsing resolves names against the catalog only — it does not
	// depend on any session's cost units — so Q9 (the 6-table join where
	// the paper sees big re-optimization wins) is parsed once and reused
	// across both settings.
	base, err := reopt.Open(cat)
	if err != nil {
		log.Fatal(err)
	}
	q, err := base.Parse(`SELECT COUNT(*)
		FROM part, supplier, lineitem, partsupp, orders, nation
		WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
		AND ps_partkey = l_partkey AND p_partkey = l_partkey
		AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
		AND p_brand = 'Brand#23'`)
	if err != nil {
		log.Fatal(err)
	}

	for _, setting := range []struct {
		name  string
		units reopt.Units
	}{
		{"default units", reopt.DefaultUnits},
		{"calibrated units", calibrated},
	} {
		// One Session per cost-unit setting: each owns its own optimizer
		// configuration over the shared catalog.
		cfg := reopt.DefaultOptimizerConfig()
		cfg.Units = setting.units
		s, err := reopt.Open(cat, reopt.WithOptimizerConfig(cfg))
		if err != nil {
			log.Fatal(err)
		}
		orig, err := s.Optimize(q)
		if err != nil {
			log.Fatal(err)
		}
		origRun, err := s.Execute(ctx, orig, reopt.ExecOptions{CountOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Reoptimize(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		finalRun, err := s.Execute(ctx, res.Final, reopt.ExecOptions{CountOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[%s]\n", setting.name)
		fmt.Printf("  original plan:      %v (%d tuples)\n",
			origRun.Duration, origRun.Counters.Tuples)
		fmt.Printf("  re-optimized plan:  %v (%d tuples), %d plan(s), overhead %v\n",
			finalRun.Duration, finalRun.Counters.Tuples, res.NumPlans, res.ReoptTime)
		if origRun.Count != finalRun.Count {
			log.Fatalf("result mismatch: %d vs %d", origRun.Count, finalRun.Count)
		}
		fmt.Printf("  result rows: %d\n", finalRun.Count)
	}
}

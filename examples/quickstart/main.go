// Quickstart: build a small database by hand through the public API,
// plant a correlation the optimizer cannot see, and watch the
// sampling-based re-optimizer fix the plan.
//
// The planted correlation: every order's status is determined by its
// region (status = region mod 7). Per-column statistics estimate
// σ(region = 3 AND status = 3) at |orders|/(50·7) ≈ 57 rows under the
// attribute-value-independence assumption, but the true size is
// |orders|/50 ≈ 400 rows — a 7x underestimate that propagates into the
// join above and makes a nested-loop strategy look cheaper than it is.
// Sampling-based validation catches the error before execution.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"reopt"
)

func main() {
	cat := reopt.NewCatalog()
	rng := rand.New(rand.NewSource(1))

	orders := reopt.NewTable("orders", reopt.NewSchema(
		reopt.Column{Name: "region", Kind: reopt.KindInt},
		reopt.Column{Name: "status", Kind: reopt.KindInt},
	))
	for i := 0; i < 20000; i++ {
		region := int64(rng.Intn(50))
		orders.MustAppend(reopt.Row{reopt.Int(region), reopt.Int(region % 7)})
	}

	shipments := reopt.NewTable("shipments", reopt.NewSchema(
		reopt.Column{Name: "region", Kind: reopt.KindInt},
		reopt.Column{Name: "carrier", Kind: reopt.KindInt},
	))
	for i := 0; i < 20000; i++ {
		shipments.MustAppend(reopt.Row{
			reopt.Int(int64(rng.Intn(50))),
			reopt.Int(int64(rng.Intn(5))),
		})
	}
	if _, err := shipments.CreateIndex("region"); err != nil {
		log.Fatal(err)
	}

	carriers := reopt.NewTable("carriers", reopt.NewSchema(
		reopt.Column{Name: "carrier", Kind: reopt.KindInt},
		reopt.Column{Name: "zone", Kind: reopt.KindInt},
	))
	for c := int64(0); c < 5; c++ {
		carriers.MustAppend(reopt.Row{reopt.Int(c), reopt.Int(c % 2)})
	}
	if _, err := carriers.CreateIndex("carrier"); err != nil {
		log.Fatal(err)
	}

	cat.MustAddTable(orders)
	cat.MustAddTable(shipments)
	cat.MustAddTable(carriers)
	if err := cat.AnalyzeAll(reopt.AnalyzeOptions{}); err != nil {
		log.Fatal(err)
	}
	cat.BuildSamples(7)

	// The Session is the front door: it owns the optimizer and exposes
	// the whole pipeline (parse, optimize, re-optimize, execute) as
	// context-aware methods.
	ctx := context.Background()
	s, err := reopt.Open(cat)
	if err != nil {
		log.Fatal(err)
	}
	q, err := s.Parse(`SELECT COUNT(*)
		FROM orders, shipments, carriers
		WHERE orders.region = shipments.region
		AND shipments.carrier = carriers.carrier
		AND orders.region = 3 AND orders.status = 3`)
	if err != nil {
		log.Fatal(err)
	}

	orig, err := s.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original plan (note the underestimated row counts):")
	fmt.Print(orig.Explain())

	res, err := s.Reoptimize(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-optimization trace (%d round(s), converged=%v):\n",
		len(res.Rounds), res.Converged)
	for i, rd := range res.Rounds {
		fmt.Printf("  round %d: transform=%s newly-validated-sets=%d cost_s=%.1f\n",
			i+1, rd.Transform, rd.GammaAdded, rd.SampledCost)
	}
	fmt.Printf("\nvalidated cardinalities Γ: %s\n", res.Gamma.Snapshot())
	fmt.Println("\nfinal plan (corrected row counts):")
	fmt.Print(res.Final.Explain())

	origRun, err := s.Execute(ctx, orig, reopt.ExecOptions{CountOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	finalRun, err := s.Execute(ctx, res.Final, reopt.ExecOptions{CountOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noriginal:     %6d rows, %8d tuples + %6d random pages, %v\n",
		origRun.Count, origRun.Counters.Tuples, origRun.Counters.RandPages, origRun.Duration)
	fmt.Printf("re-optimized: %6d rows, %8d tuples + %6d random pages, %v\n",
		finalRun.Count, finalRun.Counters.Tuples, finalRun.Counters.RandPages, finalRun.Duration)
}

// Torture test: run the paper's §4 Optimizer Torture Test end to end.
// The database is built by Algorithm 2 (B_k = A_k, uniform A_k), the
// queries by §5.3's recipe (m = 4 selections share a constant, the rest
// differ, joined in a chain), so every query is empty while its
// same-constant sub-query has M^4 rows. The optimizer's AVI-based
// estimates cannot tell the empty joins from the enormous ones;
// sampling-based re-optimization can.
package main

import (
	"context"
	"fmt"
	"log"

	"reopt"
)

func main() {
	fmt.Println("building OTT database (Algorithm 2)...")
	cat, err := reopt.GenerateOTT(reopt.OTTConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range cat.TableNames() {
		t, _ := cat.Table(name)
		fmt.Printf("  %s: %d rows\n", name, t.NumRows())
	}

	qs, err := reopt.OTTQueries(cat, reopt.OTTQueryConfig{
		NumTables:    5, // 4 joins, as in Figure 10
		SameConstant: 4,
		Count:        5,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One Session for the whole torture run; a shared validation cache
	// lets the similar OTT instances reuse each other's sample counts.
	ctx := context.Background()
	s, err := reopt.Open(cat, reopt.WithSharedCache(0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-5s  %-14s %-14s %-9s %-7s\n",
		"query", "original", "re-optimized", "speedup", "plans")
	for i, q := range qs {
		orig, err := s.Optimize(q)
		if err != nil {
			log.Fatal(err)
		}
		origRun, err := s.Execute(ctx, orig, reopt.ExecOptions{CountOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Reoptimize(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		finalRun, err := s.Execute(ctx, res.Final, reopt.ExecOptions{CountOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		if origRun.Count != 0 || finalRun.Count != 0 {
			log.Fatalf("OTT query %d should be empty", i+1)
		}
		speed := float64(origRun.Duration) / float64(finalRun.Duration+1)
		fmt.Printf("%-5d  %-14v %-14v %-8.1fx %-7d\n",
			i+1, origRun.Duration, finalRun.Duration, speed, res.NumPlans)
	}

	fmt.Println("\none query in detail:")
	q := qs[0]
	fmt.Printf("  %s\n\n", q)
	res, err := s.Reoptimize(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final plan (the empty join is evaluated first):")
	fmt.Print(res.Final.Explain())
	fmt.Printf("validated cardinalities: %s\n", res.Gamma.Snapshot())
}

// Mid-query comparison: run the paper's compile-time sampling-based
// re-optimizer and the classic runtime (mid-query) re-optimizer (Kabra &
// DeWitt; progressive optimization) side by side on torture-test
// queries — the §6 trade-off made concrete: runtime re-optimization sees
// true cardinalities but pays materialization; compile-time sees sampled
// cardinalities and pays only sample runs before execution starts.
package main

import (
	"context"
	"fmt"
	"log"

	"reopt"
)

func main() {
	cat, err := reopt.GenerateOTT(reopt.OTTConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	qs, err := reopt.OTTQueries(cat, reopt.OTTQueryConfig{
		NumTables: 5, SameConstant: 4, Count: 6, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One Session serves both strategies: it owns the optimizer and a
	// cross-query validation cache, so successive compile-time
	// re-optimizations reuse each other's sample counts.
	ctx := context.Background()
	s, err := reopt.Open(cat, reopt.WithSharedCache(0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-5s  %-12s %-24s %-30s\n", "query", "original", "compile-time re-opt", "runtime re-opt")
	fmt.Printf("%-5s  %-12s %-24s %-30s\n", "", "exec", "exec + sampling overhead", "total (materialized rows)")
	for i, q := range qs {
		orig, err := s.Optimize(q)
		if err != nil {
			log.Fatal(err)
		}
		origRun, err := s.Execute(ctx, orig, reopt.ExecOptions{CountOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		cres, err := s.Reoptimize(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		crun, err := s.Execute(ctx, cres.Final, reopt.ExecOptions{CountOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		rres, err := s.MidQuery(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		if origRun.Count != crun.Count || crun.Count != rres.Count {
			log.Fatalf("query %d: result mismatch", i+1)
		}
		fmt.Printf("%-5d  %-12v %v + %-12v %v (%d rows)\n",
			i+1, origRun.Duration, crun.Duration, cres.ReoptTime,
			rres.Duration, rres.MaterializedRows)
	}
	fmt.Println("\nBoth approaches repair the catastrophic original plans; the compile-time")
	fmt.Println("loop does it before execution begins, for the price of a few sample joins.")
}

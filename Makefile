# Development targets; CI runs the same commands (.github/workflows/ci.yml).

# bash + pipefail: the bench targets pipe `go test` through tee, and a
# failing benchmark run must fail the target instead of archiving a
# truncated BENCH_<sha>.json as if it succeeded.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go
BENCH_SHA ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: all vet build test race check examples bench bench-smoke bench-hotpath bench-json

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector — the gate for the
# partitioned-parallel skeleton engine (workers share bitmaps by
# disjoint word ranges; the detector proves the disjointness claims).
race:
	$(GO) test -race ./...

# examples builds the example programs and the cmds as an explicit,
# separately reported CI step: `go build ./...` in `check` covers them
# too, but a dedicated step makes example drift against the public API
# fail visibly under its own name instead of inside the module build.
examples:
	$(GO) build ./examples/... ./cmd/...

# check is the tier-1 gate: vet, build, full test suite.
check: vet build test

# bench-smoke runs every benchmark for a single iteration — a cheap
# compile-and-execute pass that CI uses to keep the harness green.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-hotpath measures the re-optimization hot path with allocation
# counts (the series tracked across PRs).
bench-hotpath:
	$(GO) test -run xxx -bench 'BenchmarkSamplingEstimatePlan|BenchmarkHashJoinKeys|BenchmarkSamplingValidation|BenchmarkReoptimizeOTT|BenchmarkReoptimizeMultiSeed|BenchmarkWorkloadCache|BenchmarkSessionWorkloadParallel' -benchtime 2s .

# bench runs everything and archives the numbers as machine-readable
# JSON (ns/op, B/op, allocs/op per benchmark) named after the commit,
# so the perf trajectory is diffable across PRs.
bench:
	$(GO) test -run xxx -bench . -benchmem ./... | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -sha $(BENCH_SHA) -out BENCH_$(BENCH_SHA).json

# bench-json is the CI variant: the hot-path series only (fast enough
# for every push), archived as BENCH_<sha>.json and uploaded as a
# workflow artifact.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkSamplingEstimatePlan|BenchmarkHashJoinKeys|BenchmarkSamplingValidation|BenchmarkReoptimizeOTT|BenchmarkReoptimizeMultiSeed|BenchmarkWorkloadCache|BenchmarkSessionWorkloadParallel|BenchmarkExecutorJoinRows' -benchtime 1s -benchmem . ./internal/executor | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -sha $(BENCH_SHA) -out BENCH_$(BENCH_SHA).json

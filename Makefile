# Development targets; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all vet build test race check bench bench-smoke bench-hotpath

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector — the gate for the
# partitioned-parallel skeleton engine (workers share bitmaps by
# disjoint word ranges; the detector proves the disjointness claims).
race:
	$(GO) test -race ./...

# check is the tier-1 gate: vet, build, full test suite.
check: vet build test

# bench-smoke runs every benchmark for a single iteration — a cheap
# compile-and-execute pass that CI uses to keep the harness green.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-hotpath measures the re-optimization hot path with allocation
# counts (the series tracked across PRs).
bench-hotpath:
	$(GO) test -run xxx -bench 'BenchmarkSamplingEstimatePlan|BenchmarkHashJoinKeys|BenchmarkSamplingValidation|BenchmarkReoptimizeOTT' -benchtime 2s .

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Development targets; CI runs the same commands (.github/workflows/ci.yml).

# bash + pipefail: the bench targets pipe `go test` through tee, and a
# failing benchmark run must fail the target instead of archiving a
# truncated BENCH_<sha>.json as if it succeeded.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go
BENCH_SHA ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

# Packages that define benchmarks, derived from the sources so a new
# benchmark file lands in the series by existing: hardcoding the list
# here once silently dropped whole packages from BENCH_<sha>.json.
BENCH_PKGS = $(shell grep -rl --include='*_test.go' 'func Benchmark' . | xargs -n1 dirname | sort -u)

# The hot-path series tracked across PRs (bench-hotpath, bench-json,
# and the committed BENCH_baseline.json regression gate).
BENCH_HOTPATH_RE = BenchmarkSamplingEstimatePlan|BenchmarkHashJoinKeys|BenchmarkSamplingValidation|BenchmarkReoptimizeOTT|BenchmarkReoptimizeMultiSeed|BenchmarkWorkloadCache|BenchmarkSessionWorkloadParallel|BenchmarkWorkloadScheduler|BenchmarkExecutorJoinRows|BenchmarkShardedValidation|BenchmarkReoptdHTTP|BenchmarkTemplateWorkload

.PHONY: all vet build test race check lint chaos examples serve-smoke bench bench-smoke bench-hotpath bench-json bench-compare bench-baseline

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector — the gate for the
# partitioned-parallel skeleton engine (workers share bitmaps by
# disjoint word ranges; the detector proves the disjointness claims).
race:
	$(GO) test -race ./...

# examples builds the example programs and the cmds as an explicit,
# separately reported CI step: `go build ./...` in `check` covers them
# too, but a dedicated step makes example drift against the public API
# fail visibly under its own name instead of inside the module build.
examples:
	$(GO) build ./examples/... ./cmd/...

# check is the tier-1 gate: vet, build, full test suite.
check: vet build test

# lint is the contract gate: go vet plus the repo's own analyzer suite
# (cmd/reoptvet; DESIGN.md §8). reoptvet enforces the written
# contracts — deterministic map iteration, goroutine panic
# containment, cache hygiene on error paths, budget-vs-ctx discipline,
# and the sentinel error taxonomy — and fails on any finding or bare
# //reoptvet:ignore.
lint: vet
	$(GO) run ./cmd/reoptvet ./...

# chaos runs the failure-isolation suite under the race detector at
# constrained parallelism (the CI shape): the fault-injection harness,
# the executor/core budget-and-panic tests, the Session chaos tests
# — injected panics, starvation memory budgets, admission shedding and
# close-under-load against one shared Session — and the reoptd daemon
# chaos tests (cross-tenant fault isolation, handler-boundary panics,
# kill-and-restart recovery), all with in-test goroutine-leak
# assertions.
chaos: vet
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/faultinject
	GOMAXPROCS=2 $(GO) test -race -count=1 \
		-run 'TestChaos|TestPanic|TestMemoryBudget|TestMemBudget|TestRunSpans' \
		. ./internal/executor ./internal/core ./internal/server

# serve-smoke builds cmd/reoptd and drives a real daemon process across
# its lifecycle: readiness, one reoptimize, an over-quota burst that
# must shed at least one 429 with a Retry-After hint, then SIGTERM and
# a clean (exit 0) drain within the grace period.
serve-smoke:
	mkdir -p bin
	$(GO) build -o bin/reoptd ./cmd/reoptd
	$(GO) run ./cmd/servesmoke -bin bin/reoptd

# bench-smoke runs every benchmark for a single iteration — a cheap
# compile-and-execute pass that CI uses to keep the harness green.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x $(BENCH_PKGS)

# bench-hotpath measures the re-optimization hot path with allocation
# counts (the series tracked across PRs), over the same derived package
# list as bench-json so no series benchmark can silently drop out.
bench-hotpath:
	$(GO) test -run xxx -bench '$(BENCH_HOTPATH_RE)' -benchtime 2s -benchmem $(BENCH_PKGS)

# bench runs everything and archives the numbers as machine-readable
# JSON (ns/op, B/op, allocs/op per benchmark) named after the commit,
# so the perf trajectory is diffable across PRs.
bench:
	$(GO) test -run xxx -bench . -benchmem ./... | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -sha $(BENCH_SHA) -out BENCH_$(BENCH_SHA).json

# bench-json is the CI variant: the hot-path series only (fast enough
# for every push), over the derived benchmark packages, archived as
# BENCH_<sha>.json and uploaded as a workflow artifact. 2s benchtime:
# the regression gate compares these numbers against the committed
# baseline, and 1s runs carry too much scheduler/turbo noise.
bench-json:
	$(GO) test -run xxx -bench '$(BENCH_HOTPATH_RE)' -benchtime 2s -benchmem $(BENCH_PKGS) | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -sha $(BENCH_SHA) -out BENCH_$(BENCH_SHA).json

# bench-compare regenerates the hot-path series and fails on a >25%
# ns/op regression against the committed baseline (or on a benchmark
# silently dropping out of the series). CI runs it with GOMAXPROCS>=2;
# the verdict lines land in BENCH_compare.txt for the artifact upload.
bench-compare: bench-json
	$(GO) run ./cmd/benchjson -baseline BENCH_baseline.json -against BENCH_$(BENCH_SHA).json -max-regress 25 | tee BENCH_compare.txt

# bench-baseline refreshes the committed baseline from a fresh run.
# Regenerate (on the CI runner class, GOMAXPROCS>=2) whenever the
# series changes shape or the runner hardware shifts, and commit the
# result.
bench-baseline: bench-json
	cp BENCH_$(BENCH_SHA).json BENCH_baseline.json
	@echo "bench-baseline: wrote BENCH_baseline.json — commit it"

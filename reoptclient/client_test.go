package reoptclient_test

// Retry-policy tests against scripted fake daemons: the client retries
// exactly the failures that are provably not admitted (429, 503) or
// transport-level, and nothing else.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"reopt/reoptclient"
)

// fastClient returns a client with millisecond backoff so retry loops
// finish instantly.
func fastClient(base string, opts ...reoptclient.ClientOption) *reoptclient.Client {
	return reoptclient.New(base, append([]reoptclient.ClientOption{
		reoptclient.WithBackoff(time.Millisecond, 10*time.Millisecond),
	}, opts...)...)
}

// script serves canned responses in order, then repeats the last one,
// counting attempts.
func script(t *testing.T, steps []func(w http.ResponseWriter)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(n.Add(1)) - 1
		if i >= len(steps) {
			i = len(steps) - 1
		}
		steps[i](w)
	}))
	t.Cleanup(ts.Close)
	return ts, &n
}

func ok(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&reoptclient.ReoptimizeResponse{Fingerprint: "fp", Explain: "plan"})
}

func status(code int, kind string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(&reoptclient.ErrorBody{Kind: kind})
	}
}

// TestRetriesOverloadedAndDraining: 429 and 503 are shed-at-the-door
// codes; the client retries through them to the eventual 200.
func TestRetriesOverloadedAndDraining(t *testing.T) {
	ts, n := script(t, []func(http.ResponseWriter){
		status(http.StatusTooManyRequests, reoptclient.KindOverloaded),
		status(http.StatusServiceUnavailable, reoptclient.KindDraining),
		ok,
	})
	c := fastClient(ts.URL)
	res, err := c.Reoptimize(context.Background(), &reoptclient.ReoptimizeRequest{SQL: "q"})
	if err != nil {
		t.Fatalf("retriable chain: %v", err)
	}
	if res.Fingerprint != "fp" {
		t.Errorf("got %q, want the scripted response", res.Fingerprint)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

// TestDoesNotRetryAdmittedFailures: 400, 404, 422, 500 and 504 mean
// the request was admitted (or is malformed) and would fail again —
// exactly one attempt each, error surfaced as *APIError.
func TestDoesNotRetryAdmittedFailures(t *testing.T) {
	for _, tc := range []struct {
		code int
		kind string
	}{
		{http.StatusBadRequest, reoptclient.KindBadRequest},
		{http.StatusNotFound, reoptclient.KindUnknownTenant},
		{http.StatusUnprocessableEntity, reoptclient.KindMemoryBudget},
		{http.StatusInternalServerError, reoptclient.KindValidationPanic},
		{http.StatusGatewayTimeout, reoptclient.KindBudgetExhausted},
	} {
		ts, n := script(t, []func(http.ResponseWriter){status(tc.code, tc.kind), ok})
		c := fastClient(ts.URL)
		_, err := c.Reoptimize(context.Background(), &reoptclient.ReoptimizeRequest{SQL: "q"})
		ae, okType := err.(*reoptclient.APIError)
		if !okType {
			t.Fatalf("code %d: err = %v, want *APIError", tc.code, err)
		}
		if ae.Status != tc.code || ae.Body.Kind != tc.kind {
			t.Errorf("code %d: got %d %q", tc.code, ae.Status, ae.Body.Kind)
		}
		if got := n.Load(); got != 1 {
			t.Errorf("code %d: attempts = %d, want exactly 1 (no retry)", tc.code, got)
		}
	}
}

// TestRetryAfterParsedFromHeader: the server's Retry-After header
// surfaces on the APIError so callers (and the retry loop) can honor
// it. Retries are disabled so no actual waiting happens.
func TestRetryAfterParsedFromHeader(t *testing.T) {
	ts, _ := script(t, []func(http.ResponseWriter){func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "7")
		status(http.StatusTooManyRequests, reoptclient.KindOverloaded)(w)
	}})
	c := fastClient(ts.URL, reoptclient.WithRetries(0))
	_, err := c.Reoptimize(context.Background(), &reoptclient.ReoptimizeRequest{SQL: "q"})
	ae, okType := err.(*reoptclient.APIError)
	if !okType {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if !reoptclient.IsOverloaded(err) {
		t.Error("IsOverloaded(429) = false")
	}
	if ae.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", ae.RetryAfter)
	}
}

// TestRetriesTransportErrors: a daemon that tears the connection down
// mid-request (a crash) is retried — the endpoints are pure — and the
// request completes once the daemon answers again.
func TestRetriesTransportErrors(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			hj, okType := w.(http.Hijacker)
			if !okType {
				t.Error("response writer is not a Hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // torn mid-request: the client sees a transport error
			return
		}
		ok(w)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	res, err := c.Reoptimize(context.Background(), &reoptclient.ReoptimizeRequest{SQL: "q"})
	if err != nil {
		t.Fatalf("through two torn connections: %v", err)
	}
	if res.Fingerprint != "fp" {
		t.Errorf("got %q, want the scripted response", res.Fingerprint)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

// TestRetryBudgetExhausts: a daemon that sheds forever eventually
// surfaces the 429 instead of retrying unboundedly.
func TestRetryBudgetExhausts(t *testing.T) {
	ts, n := script(t, []func(http.ResponseWriter){
		status(http.StatusTooManyRequests, reoptclient.KindOverloaded),
	})
	c := fastClient(ts.URL, reoptclient.WithRetries(3))
	_, err := c.Reoptimize(context.Background(), &reoptclient.ReoptimizeRequest{SQL: "q"})
	if !reoptclient.IsOverloaded(err) {
		t.Fatalf("err = %v, want the final 429", err)
	}
	if got := n.Load(); got != 4 {
		t.Errorf("attempts = %d, want 1 + 3 retries", got)
	}
}

// TestCancelDuringBackoff: a caller abandoning the request while the
// client waits out a backoff gets ctx.Err back promptly.
func TestCancelDuringBackoff(t *testing.T) {
	ts, _ := script(t, []func(http.ResponseWriter){func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "60")
		status(http.StatusTooManyRequests, reoptclient.KindOverloaded)(w)
	}})
	c := reoptclient.New(ts.URL,
		reoptclient.WithBackoff(time.Minute, time.Minute))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Reoptimize(ctx, &reoptclient.ReoptimizeRequest{SQL: "q"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt land and backoff start
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client kept waiting out the backoff after cancellation")
	}
}

// Package reoptclient is the wire protocol and minimal Go client for
// the reoptd daemon (cmd/reoptd): JSON request/response types for the
// /v1/reoptimize, /v1/validate and /v1/workload endpoints, and a
// retrying HTTP client that honors the server's Retry-After backoff
// hints. The package depends only on the standard library, so embedding
// it in a caller does not pull in the query-processing engine.
//
// Failure semantics mirror the daemon's (DESIGN.md §7): 429 means the
// tenant's admission queue was full and the request was shed before any
// work started; 503 means the daemon is draining; both are safe to
// retry and carry a Retry-After hint. A request-level timeout is a §5.4
// budget, not an error: the daemon answers 200 with the best plan found
// so far and Converged=false.
package reoptclient

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration marshals as a Go duration string ("150ms", "2s") so request
// bodies and config files stay human-readable.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a bare number of
// nanoseconds (the encoding a naive marshaler of time.Duration emits).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case string:
		dd, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("reoptclient: bad duration %q: %w", t, err)
		}
		*d = Duration(dd)
		return nil
	case float64:
		*d = Duration(time.Duration(t))
		return nil
	default:
		return fmt.Errorf("reoptclient: bad duration %v", v)
	}
}

// ReoptimizeRequest asks the daemon to run Algorithm 1 on one query.
type ReoptimizeRequest struct {
	// SQL is the query text (the SPJ dialect Session.Parse accepts).
	SQL string `json:"sql"`
	// Timeout, when positive, budgets the whole re-optimization: on
	// expiry the daemon returns the best plan generated so far with
	// Converged=false (HTTP 200), per the paper's §5.4. It also caps
	// the request's server-side context deadline.
	Timeout Duration `json:"timeout,omitempty"`
	// MaxRounds caps optimizer invocations (0 = run to convergence).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Seeds, when > 1, selects the §7 multi-seed variant with that many
	// distinct initial plans.
	Seeds int `json:"seeds,omitempty"`
}

// ReoptimizeResponse is the outcome of one re-optimization.
type ReoptimizeResponse struct {
	// Fingerprint canonically identifies the final plan's shape.
	Fingerprint string `json:"fingerprint"`
	// Explain is the final plan rendered as an EXPLAIN tree.
	Explain string `json:"explain"`
	// Cost is the final plan's cost under the validated statistics.
	Cost float64 `json:"cost"`
	// NumPlans and Rounds trace the procedure (Figures 5/8/16/20).
	NumPlans int `json:"num_plans"`
	Rounds   int `json:"rounds"`
	// Converged is false when a round/time budget stopped the loop
	// early and the response carries the best-so-far plan.
	Converged bool `json:"converged"`
	// ReoptTime is the server-side re-optimization overhead.
	ReoptTime Duration `json:"reopt_time"`
}

// ValidateRequest asks the daemon to optimize each query once and
// validate the resulting plans' join skeletons over the samples as one
// shared-scan batch.
type ValidateRequest struct {
	SQL     []string `json:"sql"`
	Timeout Duration `json:"timeout,omitempty"`
}

// PlanEstimate is one plan's sampling-validated cardinalities.
type PlanEstimate struct {
	// Delta maps canonical relation-set keys to estimated full-table
	// cardinalities (the paper's Δ).
	Delta map[string]float64 `json:"delta"`
	// SampleRows records the raw per-key sample counts.
	SampleRows map[string]int64 `json:"sample_rows"`
	// Duration is the wall-clock validation time.
	Duration Duration `json:"duration"`
}

// ValidateResponse carries one estimate per submitted query,
// positionally.
type ValidateResponse struct {
	Estimates []PlanEstimate `json:"estimates"`
}

// WorkloadRequest re-optimizes a batch of queries with bounded
// concurrency through one tenant session.
type WorkloadRequest struct {
	SQL []string `json:"sql"`
	// Parallelism bounds queries in flight (0 = server default).
	Parallelism int `json:"parallelism,omitempty"`
	// Timeout budgets each query independently (§5.4 per query).
	Timeout Duration `json:"timeout,omitempty"`
	// MaxRounds caps each query's optimizer invocations.
	MaxRounds int `json:"max_rounds,omitempty"`
}

// WorkloadItem is one query's slot in a workload response: exactly one
// of Result and Error is set. A per-query failure (admission shed,
// contained panic, budget spent while queued) leaves Error set while
// the other items carry their results — the HTTP status is still 200.
type WorkloadItem struct {
	Result *ReoptimizeResponse `json:"result,omitempty"`
	Error  *ErrorBody          `json:"error,omitempty"`
}

// WorkloadResponse is positional and parallel to the request's SQL.
type WorkloadResponse struct {
	Items []WorkloadItem `json:"items"`
}

// Error kinds, the machine-readable classification of every non-200
// response (and of per-query workload failures). They mirror the root
// package's error taxonomy; DESIGN.md §7 tabulates the mapping.
const (
	// KindOverloaded: the tenant's admission queue was full; the
	// request was shed before any work started (HTTP 429, Retry-After
	// set). Always safe to retry.
	KindOverloaded = "overloaded"
	// KindDraining: the daemon is shutting down; queued and new
	// requests are rejected while in-flight ones finish (HTTP 503,
	// Retry-After set). Safe to retry against a restarted daemon.
	KindDraining = "draining"
	// KindMemoryBudget: a /v1/validate run breached the tenant's
	// per-validation memory budget; with no best-so-far plan to degrade
	// to, the call fails (HTTP 422). Re-optimize requests never carry
	// this kind — they degrade to 200 best-so-far.
	KindMemoryBudget = "memory_budget"
	// KindValidationPanic: a panic inside the validation pipeline was
	// contained; only this request failed and the daemon keeps serving
	// (HTTP 500). Retrying is permitted but not automatic: the same
	// plan will likely panic again.
	KindValidationPanic = "validation_panic"
	// KindPanic: a panic crossed the handler boundary itself and was
	// contained there (HTTP 500).
	KindPanic = "panic"
	// KindBudgetExhausted: the request's budget was spent before any
	// plan was produced — e.g. the query sat queued for its whole
	// timeout (HTTP 504).
	KindBudgetExhausted = "budget_exhausted"
	// KindBadRequest: unparseable body, unknown field values, or SQL
	// the dialect rejects (HTTP 400).
	KindBadRequest = "bad_request"
	// KindUnknownTenant: the tenant is not configured and the daemon
	// has no default quota (HTTP 404).
	KindUnknownTenant = "unknown_tenant"
	// KindInternal: any other failure (HTTP 500).
	KindInternal = "internal"
)

// ErrorBody is the structured body of every non-200 response.
type ErrorBody struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// RetryAfter mirrors the Retry-After header, in seconds, when the
	// failure is retriable (overloaded, draining).
	RetryAfter int `json:"retry_after,omitempty"`
}

// APIError is the client-side error for a non-200 response.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Body is the decoded structured error (zero-valued when the
	// response body was not a valid ErrorBody).
	Body ErrorBody
	// RetryAfter is the parsed Retry-After header (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Body.Kind != "" {
		return fmt.Sprintf("reoptd: %d %s: %s", e.Status, e.Body.Kind, e.Body.Message)
	}
	return fmt.Sprintf("reoptd: HTTP %d", e.Status)
}

// IsOverloaded reports whether err is a 429 admission shed — the
// request did no work and may be retried after the hinted backoff.
func IsOverloaded(err error) bool {
	ae, ok := asAPIError(err)
	return ok && ae.Status == 429
}

// IsDraining reports whether err is a 503 from a draining daemon.
func IsDraining(err error) bool {
	ae, ok := asAPIError(err)
	return ok && ae.Status == 503
}

func asAPIError(err error) (*APIError, bool) {
	for err != nil {
		if ae, ok := err.(*APIError); ok {
			return ae, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}

package reoptclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to one reoptd daemon. The zero value is not usable;
// create one with New. Clients are safe for concurrent use.
//
// Retry policy — the client retries only failures that are either
// provably not yet admitted or transport-level on an idempotent
// request:
//
//   - 429 (overloaded) and 503 (draining): the daemon shed the request
//     at the door, before any work started. The client waits the
//     larger of the server's Retry-After hint and its own exponential
//     backoff, then retries.
//   - transport errors (connection refused, reset, broken reply): the
//     daemon may be restarting. Every /v1 endpoint is a pure,
//     side-effect-free computation, so re-issuing is safe; the client
//     backs off and retries, which is what lets a workload survive a
//     kill-and-restart of the daemon.
//
// Every other non-200 — 400, 404, 422, 500, 504 — is returned
// immediately as an *APIError: the request was admitted (or is
// malformed) and would fail the same way again.
type Client struct {
	base    string
	tenant  string
	hc      *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
}

// ClientOption configures New.
type ClientOption func(*Client)

// WithTenant sets the tenant every request is issued as (the
// X-Reopt-Tenant header). Without it, requests go to the daemon's
// default tenant.
func WithTenant(name string) ClientOption {
	return func(c *Client) { c.tenant = name }
}

// WithHTTPClient substitutes the underlying *http.Client (for custom
// transports or test doubles). The default has no client-side timeout:
// per-request budgets belong in the request's ctx or Timeout field.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetries bounds how many times a retriable failure is re-issued
// (default 4; 0 disables retries entirely).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the base and cap of the exponential backoff between
// retries (defaults 100ms base, 5s cap). The server's Retry-After hint,
// when larger than the computed backoff, wins.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) { c.backoff, c.maxWait = base, max }
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		retries: 4,
		backoff: 100 * time.Millisecond,
		maxWait: 5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Reoptimize runs Algorithm 1 on one query.
func (c *Client) Reoptimize(ctx context.Context, req *ReoptimizeRequest) (*ReoptimizeResponse, error) {
	var out ReoptimizeResponse
	if err := c.do(ctx, "/v1/reoptimize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Validate optimizes each query once and validates the plans' join
// skeletons over the samples as one batch.
func (c *Client) Validate(ctx context.Context, req *ValidateRequest) (*ValidateResponse, error) {
	var out ValidateResponse
	if err := c.do(ctx, "/v1/validate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Workload re-optimizes a batch of queries with bounded concurrency;
// per-query failures surface as Items[i].Error, not as a call error.
func (c *Client) Workload(ctx context.Context, req *WorkloadRequest) (*WorkloadResponse, error) {
	var out WorkloadResponse
	if err := c.do(ctx, "/v1/workload", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready reports whether the daemon is serving traffic (200 from
// /readyz); a draining or unreachable daemon returns an error. Ready
// never retries.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode}
	}
	return nil
}

// do POSTs in as JSON and decodes a 200 into out, applying the retry
// policy documented on Client.
func (c *Client) do(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("reoptclient: encode request: %w", err)
	}
	wait := c.backoff
	for attempt := 0; ; attempt++ {
		ae, err := c.once(ctx, path, body, out)
		if err == nil && ae == nil {
			return nil
		}
		retriable := false
		hint := time.Duration(0)
		if ae != nil {
			err = ae
			retriable = ae.Status == http.StatusTooManyRequests ||
				ae.Status == http.StatusServiceUnavailable
			hint = ae.RetryAfter
		} else if ctx.Err() == nil {
			// Transport-level failure with the caller still interested:
			// the daemon may be down or restarting.
			retriable = true
		}
		if !retriable || attempt >= c.retries {
			return err
		}
		d := wait
		if hint > d {
			d = hint
		}
		if d > c.maxWait {
			d = c.maxWait
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		if wait *= 2; wait > c.maxWait {
			wait = c.maxWait
		}
	}
}

// once issues a single attempt. A non-nil *APIError means the server
// answered with a non-200; a non-nil plain error means transport
// failure.
func (c *Client) once(ctx context.Context, path string, body []byte, out any) (*APIError, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.tenant != "" {
		req.Header.Set("X-Reopt-Tenant", c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, fmt.Errorf("reoptclient: decode response: %w", err)
		}
		return nil, nil
	}
	ae := &APIError{Status: resp.StatusCode}
	_ = json.Unmarshal(raw, &ae.Body) // best effort; body may not be JSON
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae, nil
}

module reopt

go 1.23.0

module reopt

go 1.24

// Package reopt is a from-scratch relational query-processing stack —
// storage, statistics, SQL front end, cost-based optimizer, Volcano
// executor — built to reproduce "Sampling-Based Query Re-Optimization"
// (Wu, Naughton, Singh; SIGMOD 2016). Its headline feature is the
// paper's compile-time re-optimization loop: optimize, validate the
// chosen plan's join cardinalities by running its join skeleton over
// per-table samples, feed the refined estimates back, and repeat until
// the plan stops changing.
//
// The front door is Session — a long-lived, goroutine-safe handle
// created once per catalog that owns the optimizer, the workload-level
// validation cache, and the validation worker budget, and exposes the
// whole pipeline as context-aware methods:
//
//	cat, _ := reopt.GenerateOTT(reopt.OTTConfig{Seed: 1})
//	s, _ := reopt.Open(cat, reopt.WithWorkers(4), reopt.WithSharedCache(4096))
//	q, _ := s.Parse(`SELECT COUNT(*) FROM r1, r2 WHERE r1.a = 0 AND r2.a = 1 AND r1.b = r2.b`)
//	res, _ := s.Reoptimize(ctx, q, reopt.WithTimeout(50*time.Millisecond))
//	fmt.Println(res.Final.Explain())
//
// Every method takes a context: cancellation aborts work in flight —
// between rounds, mid-validation inside the skeleton engines, or
// mid-execution in the Volcano loop — while a deadline acts as the
// paper's §5.4 time budget, returning the best plan generated so far.
// Whole workloads run through one session with bounded concurrency via
// Session.ReoptimizeWorkload, sharing validated counts across queries.
//
// # Migrating from the free functions
//
// The free-function API remains for one release of compatibility; each
// function's deprecation note names its replacement:
//
//	NewOptimizer + NewReoptimizer + Reoptimize  ->  Open + Session.Reoptimize
//	Reoptimizer.ReoptimizeMultiSeed             ->  Session.ReoptimizeMultiSeed
//	Parse(src, cat)                             ->  Session.Parse(src)
//	Execute(p, cat, opts)                       ->  Session.Execute(ctx, p, opts)
//	EstimateBySampling(p, cat)                  ->  Session.Validate(ctx, p)
//	EstimateBySamplingWorkers(p, cat, w)        ->  Open(cat, WithWorkers(w)) + Session.Validate
//	EstimateBySamplingBatch(ps, cat, w)         ->  Session.Validate(ctx, ps...)
//	NewWorkloadCache + ReoptOptions.Cache       ->  Open(cat, WithSharedCache(n))
//	ReoptOptions fields                         ->  WithMaxRounds / WithTimeout / WithConservative / WithSkipBelowCost
//	NewMidQueryExecutor + Run                   ->  Session.MidQuery(ctx, q)
//
// Failures are classified by the sentinels in errors.go (ErrNoSamples,
// ErrUnsupportedPlan, ErrBudgetExceeded) — test with errors.Is.
//
// # Serving over HTTP
//
// cmd/reoptd serves the pipeline as a multi-tenant HTTP daemon — one
// bounded Session per tenant (admission gate, memory budget, cache and
// scheduler quotas from a JSON config), graceful SIGTERM drain, and
// load shedding with Retry-After hints:
//
//	go run ./cmd/reoptd -db ott                  # one default tenant on :8372
//	curl -s localhost:8372/v1/reoptimize -d '{"sql":"SELECT COUNT(*) FROM r1, r2 WHERE r1.a = 0 AND r2.a = 1 AND r1.b = r2.b"}'
//
// Package reopt/reoptclient is the matching Go client; it retries only
// failures that are provably not yet admitted (429/503, transport),
// which lets a workload ride through a daemon restart. DESIGN.md §7
// documents the status-code mapping and the drain sequence.
//
// # Development workflow
//
// make check is the tier-1 gate (vet, build, tests); make lint runs
// go vet plus cmd/reoptvet, the repo's own analyzer suite that
// enforces the written contracts — deterministic map iteration,
// goroutine panic containment, cache hygiene on error paths,
// budget-vs-ctx discipline, and the sentinel taxonomy (DESIGN.md §8).
// make race and make chaos cover the concurrency and
// failure-isolation suites. CI runs all four.
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the system inventory and the paper-experiment index.
package reopt

import (
	"reopt/internal/calibrate"
	"reopt/internal/catalog"
	"reopt/internal/core"
	"reopt/internal/cost"
	"reopt/internal/executor"
	"reopt/internal/midquery"
	"reopt/internal/optimizer"
	"reopt/internal/plan"
	"reopt/internal/rel"
	"reopt/internal/sampling"
	"reopt/internal/sql"
	"reopt/internal/stats"
	"reopt/internal/storage"
	"reopt/internal/workload/ott"
	"reopt/internal/workload/tpcds"
	"reopt/internal/workload/tpch"
)

// Core data-model types.
type (
	// Kind identifies a value's runtime type.
	Kind = rel.Kind
	// Value is a relational scalar (NULL, BIGINT, DOUBLE, or TEXT).
	Value = rel.Value
	// Row is a tuple of values.
	Row = rel.Row
	// Column describes one attribute.
	Column = rel.Column
	// Schema is an ordered list of columns.
	Schema = rel.Schema
	// Table is an in-memory heap table with optional indexes.
	Table = storage.Table
	// Catalog owns tables, statistics, and samples.
	Catalog = catalog.Catalog
)

// Query processing types.
type (
	// Query is a resolved select-project-join query.
	Query = sql.Query
	// Plan is a physical query plan.
	Plan = plan.Plan
	// Optimizer is the cost-based optimizer.
	Optimizer = optimizer.Optimizer
	// OptimizerConfig tunes the optimizer.
	OptimizerConfig = optimizer.Config
	// EstimationProfile customizes selectivity estimation (the
	// commercial-system emulations of Figures 12-13).
	EstimationProfile = optimizer.Profile
	// Gamma is the validated-cardinality store Γ of Algorithm 1.
	Gamma = optimizer.Gamma
	// Units are the five PostgreSQL-style cost units.
	Units = cost.Units
	// ExecResult is the outcome of executing a plan.
	ExecResult = executor.Result
	// ExecOptions tunes plan execution.
	ExecOptions = executor.Options
)

// Re-optimization types (the paper's contribution).
type (
	// Reoptimizer runs Algorithm 1.
	Reoptimizer = core.Reoptimizer
	// ReoptOptions tunes the procedure (round/time caps, conservative
	// blending).
	ReoptOptions = core.Options
	// ReoptResult is the outcome: final plan, per-round trace, Γ.
	ReoptResult = core.Result
	// ReoptRound is one iteration's record.
	ReoptRound = core.Round
	// SamplingEstimate is the Δ produced by validating one plan.
	SamplingEstimate = sampling.Estimate
	// WorkloadCache reuses validation counts across the queries of a
	// workload (see ReoptOptions.Cache).
	WorkloadCache = sampling.WorkloadCache
	// SchedulerStats reports what a session's workload validation
	// scheduler coalesced (see WithWorkloadScheduler).
	SchedulerStats = sampling.SchedulerStats
	// MidQueryExecutor is the runtime (mid-query) re-optimization
	// baseline (Kabra-DeWitt / POP style) the paper compares against.
	MidQueryExecutor = midquery.Executor
	// MidQueryResult reports one runtime-re-optimized execution.
	MidQueryResult = midquery.Result
)

// Workload generator configs.
type (
	// TPCHConfig sizes the TPC-H-style database (Z is the skew).
	TPCHConfig = tpch.Config
	// OTTConfig sizes the Optimizer Torture Test database.
	OTTConfig = ott.Config
	// OTTQueryConfig describes a batch of OTT queries.
	OTTQueryConfig = ott.QueryConfig
	// TPCDSConfig sizes the TPC-DS-style database.
	TPCDSConfig = tpcds.Config
	// AnalyzeOptions tunes statistics collection.
	AnalyzeOptions = stats.AnalyzeOptions
	// CalibrateOptions tunes cost-unit calibration.
	CalibrateOptions = calibrate.Options
)

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return catalog.New() }

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table { return storage.NewTable(name, schema) }

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return rel.NewSchema(cols...) }

// Int, Float, Str and Null construct values.
func Int(v int64) Value     { return rel.Int(v) }
func Float(v float64) Value { return rel.Float(v) }
func Str(v string) Value    { return rel.String_(v) }

// Null is the SQL NULL value.
var Null = rel.Null

// Value kinds.
const (
	KindNull   = rel.KindNull
	KindInt    = rel.KindInt
	KindFloat  = rel.KindFloat
	KindString = rel.KindString
)

// Parse parses and resolves a SQL query against the catalog.
//
// Deprecated: use Session.Parse, which binds the catalog once at Open.
func Parse(src string, cat *Catalog) (*Query, error) { return sql.Parse(src, cat) }

// DefaultOptimizerConfig returns the standard optimizer configuration
// (PostgreSQL-style estimation, default cost units, bushy trees).
func DefaultOptimizerConfig() OptimizerConfig { return optimizer.DefaultConfig() }

// DefaultUnits are PostgreSQL's default cost units.
var DefaultUnits = cost.DefaultUnits

// NewOptimizer returns an optimizer over the catalog.
//
// Deprecated: use Open with WithOptimizerConfig; Session.Optimizer
// exposes the underlying optimizer where one is still needed.
func NewOptimizer(cat *Catalog, cfg OptimizerConfig) *Optimizer {
	return optimizer.New(cat, cfg)
}

// NewReoptimizer returns an Algorithm 1 runner with default options.
//
// Deprecated: use Open + Session.Reoptimize, which add context support,
// concurrency safety, and the session's shared cache and worker budget.
func NewReoptimizer(opt *Optimizer, cat *Catalog) *Reoptimizer {
	return core.New(opt, cat)
}

// NewMidQueryExecutor returns the runtime re-optimization baseline.
//
// Deprecated: use Session.MidQuery.
func NewMidQueryExecutor(opt *Optimizer, cat *Catalog) *MidQueryExecutor {
	return midquery.New(opt, cat)
}

// Execute runs a plan against the catalog's base tables.
//
// Deprecated: use Session.Execute, which adds cancellation.
func Execute(p *Plan, cat *Catalog, opts ExecOptions) (*ExecResult, error) {
	return executor.Run(p, cat, opts)
}

// EstimateBySampling validates a plan's join skeleton over the
// catalog's samples, returning Δ (per-relation-set cardinalities).
//
// Deprecated: use Session.Validate, which subsumes all three
// EstimateBySampling variants and adds cancellation and the session's
// shared cache.
func EstimateBySampling(p *Plan, cat *Catalog) (*SamplingEstimate, error) {
	return sampling.EstimatePlan(p, cat)
}

// EstimateBySamplingWorkers is EstimateBySampling with an explicit
// worker count for the skeleton engine's partitioned loops (0 =
// GOMAXPROCS, 1 = sequential); the estimate is identical at every
// setting.
//
// Deprecated: use Open(cat, WithWorkers(n)) + Session.Validate.
func EstimateBySamplingWorkers(p *Plan, cat *Catalog, workers int) (*SamplingEstimate, error) {
	return sampling.EstimatePlanWorkers(p, cat, nil, workers)
}

// EstimateBySamplingBatch validates several plans in one batched
// skeleton pass: subtrees shared between the plans execute once and the
// combined work partitions across workers. Estimates are positional and
// identical to estimating each plan alone.
//
// Deprecated: use Session.Validate(ctx, plans...).
func EstimateBySamplingBatch(ps []*Plan, cat *Catalog, workers int) ([]*SamplingEstimate, error) {
	return sampling.EstimatePlans(ps, cat, nil, workers)
}

// NewWorkloadCache returns a workload-level validation cache for
// ReoptOptions.Cache: re-optimizations sharing it reuse validation
// counts across queries (LRU-bounded to maxEntries subtree entries,
// <= 0 selects the default budget; entries are invalidated when a
// catalog rebuilds its samples). Reuse never changes estimates, only
// when they are computed. For a cache additionally bounded by retained
// materialized values, see NewWorkloadCacheBudget.
//
// Deprecated: use Open(cat, WithSharedCache(n)) — or WithCache to hand
// a Session an existing cache.
func NewWorkloadCache(maxEntries int) *WorkloadCache {
	return sampling.NewWorkloadCache(maxEntries)
}

// NewWorkloadCacheBudget is NewWorkloadCache with a second budget on
// the total materialized boundary-column values retained (<= 0 means
// unbounded) — the knob WithSharedCacheValues exposes — so skewed
// workloads where a few huge subtrees dominate cannot blow the memory
// budget. Intended for WithCache when a cache outlives one Session.
func NewWorkloadCacheBudget(maxEntries, maxValues int) *WorkloadCache {
	return sampling.NewWorkloadCacheBudget(maxEntries, maxValues)
}

// Calibrate runs the offline cost-unit calibration micro-benchmarks.
func Calibrate(opts CalibrateOptions) (Units, error) { return calibrate.Run(opts) }

// GenerateTPCH builds the scaled-down TPC-H-style database.
func GenerateTPCH(cfg TPCHConfig) (*Catalog, error) { return tpch.Generate(cfg) }

// GenerateOTT builds the Optimizer Torture Test database (§4).
func GenerateOTT(cfg OTTConfig) (*Catalog, error) { return ott.Generate(cfg) }

// OTTQueries generates OTT query instances (§5.3).
func OTTQueries(cat *Catalog, cfg OTTQueryConfig) ([]*Query, error) {
	return ott.Queries(cat, cfg)
}

// TPCHQueries instantiates template `id` of the TPC-H-style workload n
// times with different literals (the per-template instances of §5.2).
func TPCHQueries(cat *Catalog, id, n int, seed int64) ([]*Query, error) {
	return tpch.Instances(cat, id, n, seed)
}

// TPCDSQueries instantiates a TPC-DS-style template (e.g. "50'") n
// times with different literals (Appendix A.2).
func TPCDSQueries(cat *Catalog, id string, n int, seed int64) ([]*Query, error) {
	return tpcds.Instances(cat, id, n, seed)
}

// ExplainAnalyze renders a plan annotated with estimated vs actual row
// counts from an execution of it.
func ExplainAnalyze(p *Plan, res *ExecResult) string {
	return executor.ExplainAnalyze(p, res)
}

// GenerateTPCDS builds the TPC-DS-style database (Appendix A.2).
func GenerateTPCDS(cfg TPCDSConfig) (*Catalog, error) { return tpcds.Generate(cfg) }

// SystemAProfile and SystemBProfile emulate the estimation behaviour of
// the two commercial systems of Figures 12-13.
func SystemAProfile() *EstimationProfile { return optimizer.SystemAProfile() }
func SystemBProfile() *EstimationProfile { return optimizer.SystemBProfile() }
